// sfs-check is the trace-checking half of Fig 1: it runs the oracle over
// trace files and writes checked traces with diagnoses. Ctrl-C or
// -timeout cancels between traces (exit 4, nothing written).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	sibylfs "repro"
	"repro/internal/analysis"
	"repro/internal/cliutil"
)

func main() {
	inDir := flag.String("i", "", "directory of .trace files")
	outDir := flag.String("o", "", "directory for .checked files (optional)")
	platform := flag.String("p", "linux", "model variant: posix|linux|mac_os_x|freebsd")
	noPerms := flag.Bool("noperms", false, "disable the permissions trait")
	workers := flag.Int("w", 0, "parallel workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "cancel checking after this long (exit 4, like Ctrl-C)")
	showVersion := cliutil.VersionFlag(flag.CommandLine, "sfs-check")
	flag.Parse()
	showVersion()
	if *inDir == "" {
		fmt.Fprintln(os.Stderr, "usage: sfs-check -i DIR [-o DIR] [-p PLATFORM]")
		os.Exit(2)
	}
	pl, ok := sibylfs.DefaultSpec(), false
	if p, k := sibylfs.ParsePlatformName(*platform); k {
		pl, ok = sibylfs.SpecFor(p), true
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "sfs-check: unknown platform %q\n", *platform)
		os.Exit(2)
	}
	pl.Permissions = !*noPerms

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var traces []*sibylfs.Trace
	entries, err := os.ReadDir(*inDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-check:", err)
		os.Exit(1)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".trace") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(*inDir, e.Name()))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfs-check:", err)
			os.Exit(1)
		}
		t, err := sibylfs.ParseTrace(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfs-check: %s: %v\n", e.Name(), err)
			os.Exit(1)
		}
		if t.Name == "" {
			t.Name = strings.TrimSuffix(e.Name(), ".trace")
		}
		traces = append(traces, t)
	}

	session := sibylfs.New(sibylfs.WithSpec(pl), sibylfs.WithWorkers(*workers))
	results, err := session.Check(ctx, traces)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "sfs-check: cancelled")
			os.Exit(4)
		}
		fmt.Fprintln(os.Stderr, "sfs-check:", err)
		os.Exit(1)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "sfs-check:", err)
			os.Exit(1)
		}
		for i, r := range results {
			path := filepath.Join(*outDir, traces[i].Name+".checked")
			text := sibylfs.RenderChecked(traces[i], r)
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "sfs-check:", err)
				os.Exit(1)
			}
		}
	}
	summary := analysis.Summarise(fmt.Sprintf("%s vs %s", *inDir, *platform), traces, results)
	fmt.Print(summary)
	if summary.CapHits > 0 {
		fmt.Fprintf(os.Stderr, "sfs-check: warning: %d trace(s) hit the oracle's state-set cap; "+
			"verdicts for them are best-effort\n", summary.CapHits)
	}
	if summary.Rejected > 0 {
		os.Exit(1)
	}
}
