// sfs-test executes test scripts against a file system under test and
// writes the observed traces — the test-executor half of Fig 1. Ctrl-C
// or -timeout cancels between scripts (exit 4, nothing written).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	sibylfs "repro"
	"repro/internal/cliutil"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sfs-test -fs NAME [-i DIR] [-o DIR] [-w N] [-concurrent [-sched-seed N]] [-crash]

-fs selects the implementation under test:
  host            the real file system (in a temp-dir jail)
  spec:PLATFORM   the determinized model (posix|linux|mac_os_x|freebsd)
  NAME            a memfs survey profile (ext4, btrfs, posixovl_vfat_1.2, ...)

Without -i, the generated suite is used (with -concurrent: the concurrent
multi-process universe; with -crash: the crash-consistency universe).

-concurrent runs each script's processes concurrently — one goroutine per
process, calls genuinely interleaved in the recorded trace. -sched-seed N
(N ≠ 0) replaces the free-running goroutines with a deterministic seeded
scheduler, so the interleaving is reproducible: same script and seed,
byte-identical trace.

-crash selects the crash-consistency universe and a persistence-simulating
implementation: scripts contain fsync/sync barriers and crash labels, the
implementation tracks durable vs pending state and remounts at each crash.
Sequential executor only; -fs host is rejected.
`)
	os.Exit(2)
}

func main() {
	fsName := flag.String("fs", "", "implementation under test")
	inDir := flag.String("i", "", "directory of .script files (default: generated suite)")
	cacheDir := flag.String("cache-dir", "", "cache directory (warm starts load the generated suite from it)")
	outDir := flag.String("o", "", "directory for .trace files (default: stdout summary only)")
	workers := flag.Int("w", 0, "parallel workers (0 = GOMAXPROCS)")
	concurrent := flag.Bool("concurrent", false, "run script processes concurrently (one goroutine per process)")
	schedSeed := flag.Int64("sched-seed", 0, "with -concurrent: deterministic scheduler seed (0 = free-running)")
	crashMode := flag.Bool("crash", false, "crash-consistency universe against a persistence-simulating implementation")
	timeout := flag.Duration("timeout", 0, "cancel the run after this long (exit 4, like Ctrl-C)")
	showVersion := cliutil.VersionFlag(flag.CommandLine, "sfs-test")
	flag.Parse()
	showVersion()
	if *fsName == "" {
		usage()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	universe, err := cliutil.Universe(*concurrent, *crashMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-test:", err)
		os.Exit(2)
	}
	var fs cliutil.FSChoice
	if *crashMode {
		fs, err = cliutil.PickCrashFS(*fsName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfs-test:", err)
			os.Exit(2)
		}
	} else {
		var ok bool
		fs, ok = cliutil.PickFS(*fsName)
		if !ok {
			usage()
		}
	}
	w := *workers
	if fs.Serial {
		w = 1
	}
	sessionOpts := []sibylfs.Option{sibylfs.WithWorkers(w)}
	if *cacheDir != "" {
		sessionOpts = append(sessionOpts, sibylfs.WithCacheDir(*cacheDir))
	}
	session := sibylfs.New(sessionOpts...)
	scripts, err := cliutil.SessionScripts(ctx, session, *inDir, universe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-test:", err)
		os.Exit(1)
	}
	if fs.HostOnly {
		scripts = sibylfs.FilterHostSafe(scripts)
	}
	var traces []*sibylfs.Trace
	if *concurrent {
		traces, err = session.ExecuteConcurrent(ctx, scripts, fs.Factory, sibylfs.ConcurrentOptions{
			Seeded: *schedSeed != 0,
			Seed:   *schedSeed,
		})
	} else {
		traces, err = session.Execute(ctx, scripts, fs.Factory)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "sfs-test: cancelled")
			os.Exit(4)
		}
		fmt.Fprintln(os.Stderr, "sfs-test:", err)
		os.Exit(1)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "sfs-test:", err)
			os.Exit(1)
		}
		for _, t := range traces {
			path := filepath.Join(*outDir, t.Name+".trace")
			if err := os.WriteFile(path, []byte(t.Render()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "sfs-test:", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("executed %d scripts on %s\n", len(traces), *fsName)
}
