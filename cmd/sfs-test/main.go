// sfs-test executes test scripts against a file system under test and
// writes the observed traces — the test-executor half of Fig 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	sibylfs "repro"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sfs-test -fs NAME [-i DIR] [-o DIR] [-w N] [-concurrent [-sched-seed N]]

-fs selects the implementation under test:
  host            the real file system (in a temp-dir jail)
  spec:PLATFORM   the determinized model (posix|linux|mac_os_x|freebsd)
  NAME            a memfs survey profile (ext4, btrfs, posixovl_vfat_1.2, ...)

Without -i, the generated suite is used (with -concurrent: the concurrent
multi-process universe).

-concurrent runs each script's processes concurrently — one goroutine per
process, calls genuinely interleaved in the recorded trace. -sched-seed N
(N ≠ 0) replaces the free-running goroutines with a deterministic seeded
scheduler, so the interleaving is reproducible: same script and seed,
byte-identical trace.
`)
	os.Exit(2)
}

func main() {
	fsName := flag.String("fs", "", "implementation under test")
	inDir := flag.String("i", "", "directory of .script files (default: generated suite)")
	outDir := flag.String("o", "", "directory for .trace files (default: stdout summary only)")
	workers := flag.Int("w", 0, "parallel workers (0 = GOMAXPROCS)")
	concurrent := flag.Bool("concurrent", false, "run script processes concurrently (one goroutine per process)")
	schedSeed := flag.Int64("sched-seed", 0, "with -concurrent: deterministic scheduler seed (0 = free-running)")
	flag.Parse()
	if *fsName == "" {
		usage()
	}

	factory, serial, hostOnly := pickFS(*fsName)
	scripts := loadScripts(*inDir, *concurrent)
	if hostOnly {
		scripts = sibylfs.FilterHostSafe(scripts)
	}
	w := *workers
	if serial {
		w = 1
	}
	var traces []*sibylfs.Trace
	var err error
	if *concurrent {
		traces, err = sibylfs.ExecuteConcurrent(scripts, factory, sibylfs.ConcurrentOptions{
			Seeded:  *schedSeed != 0,
			Seed:    *schedSeed,
			Workers: w,
		})
	} else {
		traces, err = sibylfs.Execute(scripts, factory, w)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-test:", err)
		os.Exit(1)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "sfs-test:", err)
			os.Exit(1)
		}
		for _, t := range traces {
			path := filepath.Join(*outDir, t.Name+".trace")
			if err := os.WriteFile(path, []byte(t.Render()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "sfs-test:", err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("executed %d scripts on %s\n", len(traces), *fsName)
}

func pickFS(name string) (f sibylfs.Factory, serial, hostOnly bool) {
	switch {
	case name == "host":
		return sibylfs.HostFS("host"), true, true
	case strings.HasPrefix(name, "spec:"):
		pl, ok := parsePlatform(strings.TrimPrefix(name, "spec:"))
		if !ok {
			usage()
		}
		return sibylfs.SpecFS(name, sibylfs.SpecFor(pl)), false, false
	default:
		for _, p := range sibylfs.SurveyProfiles() {
			if p.Name == name {
				return sibylfs.MemFS(p), false, false
			}
		}
		return sibylfs.MemFS(sibylfs.LinuxProfile(name)), false, false
	}
}

func parsePlatform(s string) (sibylfs.Platform, bool) {
	switch s {
	case "posix":
		return sibylfs.POSIX, true
	case "linux":
		return sibylfs.Linux, true
	case "mac_os_x", "osx":
		return sibylfs.OSX, true
	case "freebsd":
		return sibylfs.FreeBSD, true
	}
	return 0, false
}

func loadScripts(dir string, concurrent bool) []*sibylfs.Script {
	if dir == "" {
		if concurrent {
			return sibylfs.GenerateConcurrent()
		}
		return sibylfs.Generate()
	}
	var out []*sibylfs.Script
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-test:", err)
		os.Exit(1)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".script") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfs-test:", err)
			os.Exit(1)
		}
		s, err := sibylfs.ParseScript(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sfs-test: %s: %v\n", e.Name(), err)
			os.Exit(1)
		}
		if s.Name == "" {
			s.Name = strings.TrimSuffix(e.Name(), ".script")
		}
		out = append(out, s)
	}
	return out
}
