// sfs-gen generates the SibylFS test suite and writes one script file per
// test into the output directory (or prints statistics with -stats).
// Ctrl-C or -timeout cancels between file writes (exit 4).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"

	sibylfs "repro"
	"repro/internal/cliutil"
)

func main() {
	outDir := flag.String("o", "", "output directory for script files (omit with -stats)")
	stats := flag.Bool("stats", false, "print per-group script counts and exit")
	group := flag.String("group", "", "only emit scripts of this command group")
	cacheDir := flag.String("cache-dir", "", "cache directory (warm starts load the generated suite from it)")
	timeout := flag.Duration("timeout", 0, "cancel generation after this long (exit 4, like Ctrl-C)")
	showVersion := cliutil.VersionFlag(flag.CommandLine, "sfs-gen")
	flag.Parse()
	showVersion()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var opts []sibylfs.Option
	if *cacheDir != "" {
		opts = append(opts, sibylfs.WithCacheDir(*cacheDir))
	}
	session := sibylfs.New(opts...)
	suite, err := session.Generate(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-gen:", err)
		os.Exit(4)
	}
	if *group != "" {
		var sel []*sibylfs.Script
		for _, s := range suite {
			if sibylfs.GroupOfName(s.Name) == *group {
				sel = append(sel, s)
			}
		}
		suite = sel
	}

	if *stats {
		m := sibylfs.SuiteStats(suite)
		groups := make([]string, 0, len(m))
		for g := range m {
			groups = append(groups, g)
		}
		sort.Strings(groups)
		total := 0
		for _, g := range groups {
			fmt.Printf("%-12s %6d\n", g, m[g])
			total += m[g]
		}
		fmt.Printf("%-12s %6d\n", "TOTAL", total)
		return
	}

	if *outDir == "" {
		fmt.Fprintln(os.Stderr, "sfs-gen: -o DIR or -stats required")
		os.Exit(2)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "sfs-gen:", err)
		os.Exit(1)
	}
	for _, s := range suite {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "sfs-gen: cancelled")
			os.Exit(4)
		}
		path := filepath.Join(*outDir, s.Name+".script")
		if err := os.WriteFile(path, []byte(s.Render()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sfs-gen:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote %d scripts to %s\n", len(suite), *outDir)
}
