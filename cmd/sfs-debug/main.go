// sfs-debug is the model-debugging tool of §2: it takes a trace and
// produces a description of the model states that the oracle tracks at
// every step — "extremely useful for developing the model, but we do not
// expect end users of SibylFS to need it". Ctrl-C cancels between steps
// (a pathological closure dump can run long).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	sibylfs "repro"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/osspec"
	"repro/internal/types"
)

func main() {
	platform := flag.String("p", "linux", "model variant")
	verbose := flag.Bool("v", false, "dump every tracked state (not just counts)")
	showVersion := cliutil.VersionFlag(flag.CommandLine, "sfs-debug")
	flag.Parse()
	showVersion()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sfs-debug [-p PLATFORM] [-v] TRACE-FILE")
		os.Exit(2)
	}
	pl, ok := types.ParsePlatform(*platform)
	if !ok {
		fmt.Fprintf(os.Stderr, "sfs-debug: unknown platform %q\n", *platform)
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-debug:", err)
		os.Exit(1)
	}
	tr, err := sibylfs.ParseTrace(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-debug:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	oracle := core.NewOracle(sibylfs.SpecFor(pl))
	states := []*osspec.OsState{oracle.InitialState()}
	fmt.Printf("# model-debug of %s (%s variant)\n\n", flag.Arg(0), pl)
	for _, st := range tr.Steps {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "sfs-debug: cancelled")
			os.Exit(4)
		}
		fmt.Printf("step %d: %s\n", st.Line, st.Label)
		var next []*osspec.OsState
		if _, ok := st.Label.(types.ReturnLabel); ok {
			// Close over τ first, as the checker does: pending calls of any
			// process may have been processed in any order by now. The
			// closure fans out across GOMAXPROCS workers exactly like the
			// checker's — and honours the same cancellation points — so the
			// dump shows the same states in the same order the oracle
			// tracks them.
			expanded, taus, _ := osspec.TauClosureWith(states, osspec.ClosureOpts{Dedup: true, Ctx: ctx})
			if taus > 0 {
				fmt.Printf("  τ-closure: %d states (%d expansions)\n", len(expanded), taus)
			}
			for _, s := range expanded {
				next = append(next, oracle.Step(s, st.Label)...)
			}
		} else {
			for _, s := range states {
				next = append(next, oracle.Step(s, st.Label)...)
			}
		}
		if len(next) == 0 {
			fmt.Printf("  !! no tracked state allows this step; stopping\n")
			break
		}
		states = next
		fmt.Printf("  tracking %d state(s)\n", len(states))
		if *verbose {
			for i, s := range states {
				fmt.Printf("  --- state %d ---\n", i)
				fmt.Print(indent(s.Dump()))
			}
		}
	}
	if len(states) > 0 {
		fmt.Println("\nfinal state(s):")
		fmt.Print(indent(states[0].Dump()))
		if len(states) > 1 {
			fmt.Printf("  (and %d more)\n", len(states)-1)
		}
	}
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "  " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
