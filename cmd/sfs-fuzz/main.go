// sfs-fuzz is the coverage-guided script fuzzer: it mutates test scripts,
// drives them against an implementation under test, admits inputs that
// reach new model coverage points to a persistent corpus, and minimizes
// every spec deviation it finds (§8/§9 future work of the paper, made a
// feedback loop). Ctrl-C ends the session gracefully: the corpus is
// already persisted and the findings collected so far are reported.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	sibylfs "repro"
	"repro/internal/cliutil"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sfs-fuzz -fs NAME [flags]

-fs selects the implementation under test:
  host            the real file system (in a temp-dir jail; implies -workers 1)
  spec:PLATFORM   the determinized model (posix|linux|mac_os_x|freebsd)
  NAME            a memfs survey profile (ext4, btrfs, posixovl_vfat_1.2, ...)

The model variant defaults to the profile's platform; override with -spec.
With -crash the implementation simulates persistence, the oracle checks
durability (Spec.Crash), and mutations insert fsync/sync barriers and
crash labels alongside the usual operators.
The session ends at -duration/-timeout (whichever is shorter), after -runs
candidates, or on Ctrl-C — all graceful: corpus and findings are reported.

exit status: 0 no deviations, 1 error, 2 usage, 3 deviations found.

flags:
`)
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	fsName := flag.String("fs", "", "implementation under test")
	specName := flag.String("spec", "", "model variant to check against (posix|linux|mac_os_x|freebsd)")
	duration := flag.Duration("duration", 30*time.Second, "wall-clock bound on the session, applied as a context deadline covering corpus seeding and the fuzz loop (0 with -runs for a run-bounded session)")
	timeout := flag.Duration("timeout", 0, "same deadline mechanism as -duration (0 = none); the shorter of the two bounds the session — use it to cap a -duration 0 -runs N session in CI")
	runs := flag.Int64("runs", 0, "stop after this many candidate executions (0 = until the time bound)")
	workers := flag.Int("workers", 4, "parallel fuzzing workers")
	seed := flag.Int64("seed", 1, "session seed (reproducible with -workers 1)")
	corpus := flag.String("corpus", "", "corpus directory to persist/resume (also receives findings)")
	steps := flag.Int("steps", 30, "max steps per candidate script")
	concurrent := flag.Bool("concurrent", false, "execute candidates with the concurrent executor (seeded scheduler, seed = -seed) and seed the corpus with the multi-process universe")
	crashMode := flag.Bool("crash", false, "fuzz durability semantics: crash-capable implementation, Spec.Crash model, fsync/sync and crash-label mutations, corpus seeded with the crash___ universe (excludes -concurrent and -fs host)")
	outDir := flag.String("o", "", "directory for report.html and summary.txt (default: -corpus dir, if set)")
	cacheDir := flag.String("cache-dir", "", "pipeline result cache: corpus entries whose clean replay is cached skip re-execution at session start")
	storeName := flag.String("store", "pack", cliutil.StoreUsage)
	cacheStats := flag.Bool("cache-stats", false, "print result-store contents and hit/miss ratios on exit")
	statsJSON := flag.String("stats-json", "", "write a telemetry snapshot (runs, corpus, latency histograms) here on exit; - = stdout")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /stats.json and /debug/pprof on this address while fuzzing")
	verbose := flag.Bool("v", false, "log corpus admissions, findings and progress")
	showVersion := cliutil.VersionFlag(flag.CommandLine, "sfs-fuzz")
	flag.Parse()
	showVersion()
	if *fsName == "" {
		usage()
	}
	if *debugAddr != "" {
		srv, err := cliutil.StartDebug(*debugAddr, "sfs-fuzz")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfs-fuzz:", err)
			os.Exit(1)
		}
		defer srv.Close()
	}
	writeStats := func() {
		if *statsJSON == "" {
			return
		}
		if err := cliutil.WriteStats(*statsJSON, "sfs-fuzz"); err != nil {
			fmt.Fprintln(os.Stderr, "sfs-fuzz: writing stats:", err)
		}
	}

	if *crashMode && *concurrent {
		fmt.Fprintln(os.Stderr, "sfs-fuzz: -crash and -concurrent are mutually exclusive (crash labels are sequential-executor only)")
		os.Exit(2)
	}
	var fs cliutil.FSChoice
	if *crashMode {
		var err error
		fs, err = cliutil.PickCrashFS(*fsName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfs-fuzz:", err)
			os.Exit(2)
		}
	} else {
		var ok bool
		fs, ok = cliutil.PickFS(*fsName)
		if !ok {
			usage()
		}
	}
	if fs.Fallback {
		// Say so, or a typo'd defect profile would silently fuzz a
		// defect-free conforming Linux memfs and report "no deviations
		// found".
		fmt.Fprintf(os.Stderr, "sfs-fuzz: note: %q is not a survey profile; fuzzing a conforming Linux memfs under that name\n", *fsName)
	}
	spec := sibylfs.SpecFor(fs.Platform)
	if *specName != "" {
		pl, ok := sibylfs.ParsePlatformName(*specName)
		if !ok {
			usage()
		}
		spec = sibylfs.SpecFor(pl)
	}
	spec.Crash = *crashMode // persistence-aware oracle for crash candidates
	w := *workers
	if fs.Serial {
		w = 1
	}

	// Ctrl-C/SIGTERM cancel the session context; the engine treats that as
	// the end of the session, exactly like the -duration deadline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	opts := []sibylfs.Option{
		sibylfs.WithSpec(spec),
		sibylfs.WithWorkers(w),
	}
	storeOpts, err := cliutil.StoreOptions(*cacheDir, *storeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-fuzz:", err)
		os.Exit(2)
	}
	opts = append(opts, storeOpts...)
	if *verbose {
		opts = append(opts, sibylfs.WithLog(os.Stderr))
	}
	session := sibylfs.New(opts...)

	job := sibylfs.FuzzJob{
		Name:       fmt.Sprintf("sfs-fuzz %s vs %s", *fsName, spec.Platform),
		Factory:    fs.Factory,
		Seed:       *seed,
		MaxRuns:    *runs,
		MaxSteps:   *steps,
		CorpusDir:  *corpus,
		Concurrent: *concurrent,
		Crash:      *crashMode,
	}
	if *concurrent {
		job.Seeds, _ = session.GenerateConcurrent(ctx)
	}
	if *crashMode {
		job.Seeds, _ = session.GenerateCrash(ctx)
	}

	res, err := session.Fuzz(ctx, job)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-fuzz:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: %d runs in %v (%.0f/s), %d exec errors\n",
		job.Name, res.Runs, res.Elapsed.Round(time.Millisecond),
		float64(res.Runs)/res.Elapsed.Seconds(), res.ExecErrors)
	fmt.Printf("corpus: %d entries (%d new, %d seeded from cache), model coverage %d/%d points (started at %d)\n",
		res.CorpusSize, res.NewEntries, res.CachedSeeds, res.CovHit, res.CovTotal, res.InitialCovHit)
	if len(res.Findings) == 0 && res.Crashes == 0 {
		fmt.Println("no deviations found")
	} else {
		fmt.Print(res.Summary)
		for _, f := range res.Findings {
			fmt.Printf("  %s [%s] %d steps (+%d duplicates)\n", f.Name, f.Kind, len(f.Script.Steps), f.Dups)
		}
	}

	dir := *outDir
	if dir == "" {
		dir = *corpus
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "sfs-fuzz:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(filepath.Join(dir, "report.html"), []byte(res.HTML), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sfs-fuzz:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(filepath.Join(dir, "summary.txt"), []byte(res.Summary.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sfs-fuzz:", err)
			os.Exit(1)
		}
		fmt.Printf("report: %s\n", filepath.Join(dir, "report.html"))
	}
	if *cacheStats {
		cliutil.PrintCacheStats("sfs-fuzz", session)
	}
	writeStats()
	if len(res.Findings) > 0 || res.Crashes > 0 {
		os.Exit(3) // deviations found: distinct from usage/config errors
	}
}
