// sfs-serve is the check-as-a-service daemon: a long-running HTTP
// coordinator that accepts suite submissions (POST /v1/jobs), fans them
// across a work-stealing pool of Session workers, streams per-record
// results as NDJSON, and exports its content-addressed result store
// over /v1/store so a fleet of sfs-run -store http://… clients shares
// one warm cache. All state lives under -data-dir: per-job resumable
// journals and the packed result store — kill the daemon, restart it on
// the same directory, and unfinished jobs resume without re-executing
// completed traces.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/serve"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sfs-serve -data-dir DIR [flags]

The daemon serves, on -addr:
  POST /v1/jobs                submit a suite spec (JSON), returns the job
  GET  /v1/jobs                list jobs
  GET  /v1/jobs/{id}           job status
  GET  /v1/jobs/{id}/records   NDJSON record stream (live, then finalized)
  GET  /v1/jobs/{id}/stats     the job's isolated telemetry snapshot
  POST /v1/jobs/{id}/cancel    cooperative cancel
  GET|PUT /v1/store/{key}      the shared result store (CRC-verified)
  GET  /v1/healthz             liveness probe

SIGINT/SIGTERM drain gracefully: running jobs cancel cooperatively, their
journals stay resumable, and the next start on the same -data-dir
re-enqueues and finishes them.

exit status: 0 clean shutdown, 1 error, 2 usage.

flags:
`)
	flag.PrintDefaults()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sfs-serve:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8373", "listen address for the service API")
	dataDir := flag.String("data-dir", "", "daemon state root: shared result store + per-job journals (required)")
	jobs := flag.Int("jobs", 2, "concurrent job slots (scheduler workers)")
	workers := flag.Int("w", 0, "pipeline workers per job (0 = GOMAXPROCS split across job slots)")
	statsJSON := flag.String("stats-json", "", "write a telemetry snapshot here on shutdown; - = stdout")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /stats.json and /debug/pprof on this address")
	verbose := flag.Bool("v", false, "log job transitions")
	showVersion := cliutil.VersionFlag(flag.CommandLine, "sfs-serve")
	flag.Parse()
	showVersion()
	if *dataDir == "" || flag.NArg() != 0 {
		usage()
	}

	if *debugAddr != "" {
		dbg, err := cliutil.StartDebug(*debugAddr, "sfs-serve")
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
	}

	opts := serve.Options{DataDir: *dataDir, Jobs: *jobs, Workers: *workers}
	if *verbose {
		opts.Log = os.Stderr
	}
	srv, err := serve.New(opts)
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hsrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "sfs-serve: listening on http://%s/ (data %s, %d job slots)\n",
		ln.Addr(), *dataDir, *jobs)

	errc := make(chan error, 1)
	go func() { errc <- hsrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		stop() // a second signal kills immediately
		fmt.Fprintln(os.Stderr, "sfs-serve: draining (running jobs stay resumable)...")
	case err := <-errc:
		srv.Close()
		fatal(err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hsrv.Shutdown(shutdownCtx)
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "sfs-serve: close:", err)
	}
	if *statsJSON != "" {
		if err := cliutil.WriteStats(*statsJSON, "sfs-serve"); err != nil {
			fmt.Fprintln(os.Stderr, "sfs-serve: writing stats:", err)
		}
	}
}
