// sfs-report runs the full survey (or a sampled slice) across the
// configuration matrix and renders text and HTML reports — the merged
// multi-platform comparison of §7. Each configuration streams through the
// sharded checking pipeline: summaries aggregate from per-trace records
// (optionally journaled to JSONL sinks with -jsonl-dir), never from a
// monolithic in-memory run, and -cache-dir lets an unchanged
// configuration re-summarise without re-executing a single trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	sibylfs "repro"
	"repro/internal/analysis"
)

func main() {
	outDir := flag.String("o", "sibylfs-report", "output directory for HTML")
	sample := flag.Int("sample", 13, "use every Nth generated script (1 = full suite)")
	workers := flag.Int("w", 0, "parallel workers")
	configFilter := flag.String("config", "", "substring filter on configuration names")
	cacheDir := flag.String("cache-dir", "", "shared result cache: unchanged configurations skip re-execution")
	jsonlDir := flag.String("jsonl-dir", "", "write one canonical JSONL record file per configuration")
	resume := flag.Bool("resume", false, "with -jsonl-dir: recover interrupted sinks and skip completed traces")
	flag.Parse()

	suite := sibylfs.Generate()
	var scripts []*sibylfs.Script
	for i, s := range suite {
		// Always include the targeted survey scenarios; sample the rest.
		if sibylfs.GroupOfName(s.Name) == "survey" || i%*sample == 0 {
			scripts = append(scripts, s)
		}
	}

	var configs []sibylfs.Config
	for _, c := range sibylfs.Configurations() {
		if strings.Contains(c.Name, *configFilter) {
			configs = append(configs, c)
		}
	}
	fmt.Printf("running %d scripts on %d configurations\n", len(scripts), len(configs))

	results, err := sibylfs.RunSurveyWith(scripts, configs, *workers, sibylfs.SurveyOptions{
		CacheDir: *cacheDir,
		JSONLDir: *jsonlDir,
		Resume:   *resume,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-report:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "sfs-report:", err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Print(r.Summary)
		html, err := analysis.RenderIndexHTML(r.Summary)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfs-report:", err)
			os.Exit(1)
		}
		name := strings.ReplaceAll(r.Config.Name, " ", "_") + ".html"
		if err := os.WriteFile(filepath.Join(*outDir, name), []byte(html), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sfs-report:", err)
			os.Exit(1)
		}
	}
	merged := sibylfs.MergeSurvey(results)
	fmt.Printf("\n%d tests distinguish configurations:\n", len(merged.Distinguishing()))
	for i, test := range merged.Distinguishing() {
		if i >= 25 {
			fmt.Printf("  ... and %d more\n", len(merged.Distinguishing())-25)
			break
		}
		fmt.Printf("  %-50s deviates on: %s\n", test, strings.Join(merged.DeviationsFor(test), ", "))
	}
	fmt.Printf("\nHTML written to %s\n", *outDir)
}
