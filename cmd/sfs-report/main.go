// sfs-report runs the full survey (or a sampled slice) across the
// configuration matrix and renders text and HTML reports — the merged
// multi-platform comparison of §7. Each configuration streams through the
// sharded checking pipeline: summaries aggregate from per-trace records
// (optionally journaled to JSONL sinks with -jsonl-dir), never from a
// monolithic in-memory run, and -cache-dir lets an unchanged
// configuration re-summarise without re-executing a single trace.
// Ctrl-C or -timeout cancels between jobs; with -jsonl-dir the sinks stay
// resumable and a later -resume run completes the matrix.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	sibylfs "repro"
	"repro/internal/analysis"
	"repro/internal/cliutil"
)

func main() {
	outDir := flag.String("o", "sibylfs-report", "output directory for HTML")
	sample := flag.Int("sample", 13, "use every Nth generated script (1 = full suite)")
	workers := flag.Int("w", 0, "parallel workers")
	configFilter := flag.String("config", "", "substring filter on configuration names")
	cacheDir := flag.String("cache-dir", "", "shared result cache: unchanged configurations skip re-execution")
	storeName := flag.String("store", "pack", cliutil.StoreUsage)
	cacheStats := flag.Bool("cache-stats", false, "print result-store contents and hit/miss ratios on exit")
	jsonlDir := flag.String("jsonl-dir", "", "write one canonical JSONL record file per configuration")
	resume := flag.Bool("resume", false, "with -jsonl-dir: recover interrupted sinks and skip completed traces")
	timeout := flag.Duration("timeout", 0, "cancel the survey after this long (sinks stay resumable; exit 4)")
	statsJSON := flag.String("stats-json", "", "write a telemetry snapshot (counters, latency histograms) here on exit; - = stdout")
	showVersion := cliutil.VersionFlag(flag.CommandLine, "sfs-report")
	flag.Parse()
	showVersion()
	writeStats := func() {
		if *statsJSON == "" {
			return
		}
		if err := cliutil.WriteStats(*statsJSON, "sfs-report"); err != nil {
			fmt.Fprintln(os.Stderr, "sfs-report: writing stats:", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []sibylfs.Option{sibylfs.WithWorkers(*workers)}
	storeOpts, err := cliutil.StoreOptions(*cacheDir, *storeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-report:", err)
		os.Exit(2)
	}
	opts = append(opts, storeOpts...)
	if *jsonlDir != "" {
		opts = append(opts, sibylfs.WithJournalDir(*jsonlDir))
	}
	if *resume {
		opts = append(opts, sibylfs.WithResume())
	}
	session := sibylfs.New(opts...)
	printCacheStats := func() {
		if *cacheStats {
			cliutil.PrintCacheStats("sfs-report", session)
		}
	}

	suite, err := session.Generate(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-report:", err)
		os.Exit(1)
	}
	var scripts []*sibylfs.Script
	for i, s := range suite {
		// Always include the targeted survey scenarios; sample the rest.
		if sibylfs.GroupOfName(s.Name) == "survey" || i%*sample == 0 {
			scripts = append(scripts, s)
		}
	}

	var configs []sibylfs.Config
	for _, c := range sibylfs.Configurations() {
		if strings.Contains(c.Name, *configFilter) {
			configs = append(configs, c)
		}
	}
	fmt.Printf("running %d scripts on %d configurations\n", len(scripts), len(configs))

	start := time.Now()
	results, err := session.Survey(ctx, scripts, configs)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			stop()
			fmt.Fprintf(os.Stderr, "sfs-report: cancelled after %v with %d/%d configurations done",
				time.Since(start).Round(time.Millisecond), len(results), len(configs))
			if *jsonlDir != "" {
				fmt.Fprintf(os.Stderr, "; rerun with -resume to finish")
			}
			fmt.Fprintln(os.Stderr)
			printCacheStats()
			writeStats()
			os.Exit(4)
		}
		fmt.Fprintln(os.Stderr, "sfs-report:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "sfs-report:", err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Print(r.Summary)
		html, err := analysis.RenderIndexHTML(r.Summary)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfs-report:", err)
			os.Exit(1)
		}
		name := strings.ReplaceAll(r.Config.Name, " ", "_") + ".html"
		if err := os.WriteFile(filepath.Join(*outDir, name), []byte(html), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sfs-report:", err)
			os.Exit(1)
		}
	}
	merged, err := session.MergeSurvey(ctx, results)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-report:", err)
		os.Exit(4)
	}
	fmt.Printf("\n%d tests distinguish configurations:\n", len(merged.Distinguishing()))
	for i, test := range merged.Distinguishing() {
		if i >= 25 {
			fmt.Printf("  ... and %d more\n", len(merged.Distinguishing())-25)
			break
		}
		fmt.Printf("  %-50s deviates on: %s\n", test, strings.Join(merged.DeviationsFor(test), ", "))
	}
	fmt.Printf("\nHTML written to %s\n", *outDir)
	printCacheStats()
	writeStats()
}
