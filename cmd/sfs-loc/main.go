// sfs-loc counts non-comment lines of the specification per module,
// regenerating the Fig 7 table of the paper (which reports 5 981 lines of
// Lem for the whole model).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"repro/internal/cliutil"
)

// moduleOf maps source directories to the Fig 7 row they correspond to.
var moduleOf = map[string]string{
	"internal/state":   "State",
	"internal/pathres": "Path resolution",
	"internal/fsspec":  "File system",
	"internal/osspec":  "POSIX API",
	"internal/types":   "Types",
	"internal/checker": "Checker",
	"internal/cov":     "Support files",
	"internal/trace":   "Support files",
}

func main() {
	root := flag.String("root", ".", "repository root")
	showVersion := cliutil.VersionFlag(flag.CommandLine, "sfs-loc")
	flag.Parse()
	showVersion()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	counts := map[string]int{}
	err := filepath.Walk(*root, func(path string, info os.FileInfo, err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") ||
			strings.HasSuffix(path, "_test.go") {
			return err
		}
		rel, _ := filepath.Rel(*root, path)
		dir := filepath.ToSlash(filepath.Dir(rel))
		mod, ok := moduleOf[dir]
		if !ok {
			return nil
		}
		n, err := countLines(path)
		if err != nil {
			return err
		}
		counts[mod] += n
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-loc:", err)
		os.Exit(1)
	}

	order := []string{"State", "Path resolution", "File system", "POSIX API", "Types", "Checker", "Support files"}
	total := 0
	fmt.Println("Fig 7 — the model, non-comment lines of specification (Go)")
	for _, m := range order {
		fmt.Printf("%-16s %6d\n", m, counts[m])
		total += counts[m]
	}
	var rest []string
	for m := range counts {
		found := false
		for _, o := range order {
			if m == o {
				found = true
			}
		}
		if !found {
			rest = append(rest, m)
		}
	}
	sort.Strings(rest)
	for _, m := range rest {
		fmt.Printf("%-16s %6d\n", m, counts[m])
		total += counts[m]
	}
	fmt.Printf("%-16s %6d\n", "Total", total)
}

// countLines counts non-blank, non-comment-only lines.
func countLines(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		n++
	}
	return n, sc.Err()
}
