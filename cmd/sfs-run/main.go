// sfs-run is the batch orchestrator: it drives the whole Fig 1 flow
// (generate/load scripts → execute → check) through the sharded,
// cache-backed pipeline, streaming per-trace records to a JSONL sink that
// doubles as a crash-safe resume journal. Unchanged traces are skipped on
// re-runs via the content-addressed result cache; -shards/-shard split one
// suite across invocations or machines. Ctrl-C (or -timeout) cancels the
// run cooperatively: completed records stay journaled and a later
// -resume invocation finishes the suite without re-executing them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	sibylfs "repro"
	"repro/internal/analysis"
	"repro/internal/cliutil"
	"repro/internal/pipeline"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sfs-run -fs NAME [flags]
       sfs-run -merge OUT.jsonl SHARD.jsonl...

-fs selects the implementation under test:
  host            the real file system (in a temp-dir jail; implies -w 1)
  spec:PLATFORM   the determinized model (posix|linux|mac_os_x|freebsd)
  NAME            a memfs survey profile (ext4, btrfs, posixovl_vfat_1.2, ...)

Without -i, the generated suite is used (with -concurrent: the concurrent
multi-process universe; with -crash: the crash-consistency universe, checked
against a persistence-aware model). Results stream to the -jsonl sink as
they finish;
-resume recovers an interrupted run and skips completed traces. With
-cache-dir, traces whose (script, model version, run config) key is cached
are never re-executed — edit one script and only it re-runs; bump the
model version and everything does.

SIGINT/SIGTERM and -timeout cancel cooperatively: the journal keeps every
completed record and -resume finishes the run later.

exit status: 0 all traces accepted, 1 error, 2 usage, 3 deviations found,
4 cancelled (interrupt or timeout; journal resumable).

flags:
`)
	flag.PrintDefaults()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sfs-run:", err)
	os.Exit(1)
}

func main() {
	fsName := flag.String("fs", "", "implementation under test")
	specName := flag.String("p", "linux", "model variant: posix|linux|mac_os_x|freebsd")
	noPerms := flag.Bool("noperms", false, "disable the permissions trait")
	inDir := flag.String("i", "", "directory of .script files (default: generated suite)")
	sample := flag.Int("sample", 1, "use every Nth script (1 = all)")
	workers := flag.Int("w", 0, "cross-trace workers (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 1, "total number of shards the suite is split into")
	shard := flag.Int("shard", 0, "this invocation's shard index, in [0,shards)")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache (skip unchanged traces)")
	storeName := flag.String("store", "pack", cliutil.StoreUsage)
	cacheStats := flag.Bool("cache-stats", false, "print result-store contents and hit/miss ratios on exit")
	jsonl := flag.String("jsonl", "run.jsonl", "JSONL result sink / resume journal")
	resume := flag.Bool("resume", false, "recover the sink journal and skip already-completed traces")
	merge := flag.Bool("merge", false, "merge shard sinks: sfs-run -merge OUT.jsonl IN.jsonl...")
	concurrent := flag.Bool("concurrent", false, "run script processes concurrently")
	schedSeed := flag.Int64("sched-seed", 0, "with -concurrent: deterministic scheduler seed (0 = free-running)")
	crashMode := flag.Bool("crash", false, "crash-consistency universe: persistence-aware model, crash-profiled implementation")
	timeout := flag.Duration("timeout", 0, "cancel the run after this long (journal stays resumable; exit 4)")
	outDir := flag.String("o", "", "directory for .checked files (optional)")
	htmlPath := flag.String("html", "", "write the HTML analysis index here (optional)")
	statsJSON := flag.String("stats-json", "", "write a telemetry snapshot (counters, latency histograms) here on exit; - = stdout")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /stats.json and /debug/pprof on this address while running")
	verbose := flag.Bool("v", false, "log pipeline progress")
	showVersion := cliutil.VersionFlag(flag.CommandLine, "sfs-run")
	flag.Parse()
	showVersion()

	if *merge {
		if flag.NArg() < 2 {
			usage()
		}
		if err := pipeline.MergeRecords(flag.Arg(0), flag.Args()[1:]...); err != nil {
			fatal(err)
		}
		return
	}
	if *fsName == "" || flag.NArg() != 0 {
		usage()
	}
	pl, ok := sibylfs.ParsePlatformName(*specName)
	if !ok {
		fmt.Fprintf(os.Stderr, "sfs-run: unknown platform %q\n", *specName)
		os.Exit(2)
	}
	spec := sibylfs.SpecFor(pl)
	spec.Permissions = !*noPerms
	spec.Crash = *crashMode // part of the pipeline cache key (SpecHash)

	if *debugAddr != "" {
		srv, err := cliutil.StartDebug(*debugAddr, "sfs-run")
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
	}
	// writeStats runs on every deliberate exit — success, deviations
	// (exit 3) and cancellation (exit 4) — so interrupted runs still leave
	// their evidence. os.Exit skips defers, hence the explicit calls.
	writeStats := func() {
		if *statsJSON == "" {
			return
		}
		if err := cliutil.WriteStats(*statsJSON, "sfs-run"); err != nil {
			fmt.Fprintln(os.Stderr, "sfs-run: writing stats:", err)
		}
	}
	// printCacheStats reports the result store's contents and this run's
	// hit/miss split; like writeStats it runs on every deliberate exit so
	// cancelled runs still show what the cache absorbed. With a remote
	// (-store http://…) backend it reports the wire traffic too — hits,
	// misses, batches and the degraded fallback paths.
	var session *sibylfs.Session
	printCacheStats := func() {
		if !*cacheStats || session == nil {
			return
		}
		cliutil.PrintCacheStats("sfs-run", session)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	universe, err := cliutil.Universe(*concurrent, *crashMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-run:", err)
		os.Exit(2)
	}
	var fs cliutil.FSChoice
	if *crashMode {
		var cerr error
		fs, cerr = cliutil.PickCrashFS(*fsName)
		if cerr != nil {
			fmt.Fprintln(os.Stderr, "sfs-run:", cerr)
			os.Exit(2)
		}
	} else {
		var ok bool
		fs, ok = cliutil.PickFS(*fsName)
		if !ok {
			usage()
		}
	}
	w := *workers
	if fs.Serial {
		w = 1
	}
	opts := []sibylfs.Option{
		sibylfs.WithSpec(spec),
		sibylfs.WithWorkers(w),
		sibylfs.WithJournal(*jsonl),
	}
	storeOpts, err := cliutil.StoreOptions(*cacheDir, *storeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfs-run:", err)
		os.Exit(2)
	}
	opts = append(opts, storeOpts...)
	if *resume {
		opts = append(opts, sibylfs.WithResume())
	}
	if *verbose {
		opts = append(opts, sibylfs.WithLog(os.Stderr))
	}
	session = sibylfs.New(opts...)

	// The session is built before the scripts load so that with -cache-dir
	// a warm start serves the generated suite (text and hashes both) from
	// the generation cache instead of regenerating it.
	scripts, err := cliutil.SessionScripts(ctx, session, *inDir, universe)
	if err != nil {
		fatal(err)
	}
	if fs.HostOnly {
		scripts = sibylfs.FilterHostSafe(scripts)
	}
	if *sample > 1 {
		var sel []*sibylfs.Script
		for i := 0; i < len(scripts); i += *sample {
			sel = append(sel, scripts[i])
		}
		scripts = sel
	}

	_, stats, err := session.Run(ctx, sibylfs.RunJob{
		Name:       fmt.Sprintf("%s vs %s", *fsName, pl),
		Scripts:    scripts,
		Factory:    fs.Factory,
		FSName:     *fsName,
		Shards:     *shards,
		Shard:      *shard,
		Concurrent: *concurrent,
		SchedSeed:  *schedSeed,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			stop() // restore default signal handling: a second Ctrl-C kills
			fmt.Fprintf(os.Stderr, "sfs-run: cancelled (%v); journal %s keeps %s — rerun with -resume to finish\n",
				err, *jsonl, stats)
			printCacheStats()
			writeStats()
			os.Exit(4)
		}
		fatal(err)
	}

	// Report over the whole sink (it may hold other shards' records from
	// earlier resumed invocations), re-read from the canonical file: the
	// JSONL on disk is the source of truth, not this process's memory.
	records, err := pipeline.ReadRecords(*jsonl)
	if err != nil {
		fatal(err)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		for _, rec := range records {
			path := filepath.Join(*outDir, rec.Name+".checked")
			if err := os.WriteFile(path, []byte(rec.Checked), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	name := fmt.Sprintf("%s vs %s", *fsName, pl)
	summary := pipeline.Summarise(name, records)
	fmt.Print(summary)
	fmt.Printf("pipeline: %s (sink %s: %d records)\n", stats, *jsonl, len(records))
	if *htmlPath != "" {
		html, err := analysis.RenderIndexHTML(summary)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*htmlPath, []byte(html), 0o644); err != nil {
			fatal(err)
		}
	}
	if summary.CapHits > 0 {
		fmt.Fprintf(os.Stderr, "sfs-run: warning: %d trace(s) hit the oracle's state-set cap; "+
			"verdicts for them are best-effort\n", summary.CapHits)
	}
	printCacheStats()
	writeStats()
	if summary.Rejected > 0 {
		os.Exit(3)
	}
}
