package sibylfs

// Crash-universe golden fixtures: the crash___ suite on the crash-profiled
// memfs must check byte-identically run over run — per-trace crash-point
// counts, state-set sizes, and one SHA-256 over every rendered checked
// trace are pinned in testdata/crash_golden.json. TestCrashGoldenParity
// additionally proves the pipeline reproduces those bytes from a warm
// cache with zero re-executions, and with the suite-level transition memo
// on and off.
//
// Regenerate with:
//
//	SFS_WRITE_CRASH_GOLDEN=1 go test -run TestCrashGolden .
//
// after convincing yourself a diff is an intended semantic change to the
// persistence model (it keys the cache via SpecHash, so stale caches
// cannot mask it).

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pipeline"
)

// crashTraceStats is the per-trace observable record for one crash script.
type crashTraceStats struct {
	Name        string `json:"name"`
	Accepted    bool   `json:"accepted"`
	CrashPoints int    `json:"crash_points"`
	Steps       int    `json:"steps"`
	MaxStates   int    `json:"max_states"`
	SumStates   int    `json:"sum_states"`
}

type crashGoldenFile struct {
	CheckedSHA       string            `json:"checked_sha256"`
	CrashPointsTotal int               `json:"crash_points_total"`
	PeakStates       int               `json:"peak_states"`
	Traces           []crashTraceStats `json:"traces"`
}

func crashGoldenSpec() Spec {
	sp := DefaultSpec()
	sp.Crash = true
	return sp
}

func crashGoldenFactory() Factory {
	p := LinuxProfile("ext4")
	p.Crash = true
	return MemFS(p)
}

func TestCrashGolden(t *testing.T) {
	scripts := GenerateCrash()
	traces, err := Execute(scripts, crashGoldenFactory(), 0)
	if err != nil {
		t.Fatal(err)
	}
	results := Check(crashGoldenSpec(), traces, 0)
	got := &crashGoldenFile{}
	h := sha256.New()
	for i, r := range results {
		h.Write([]byte(RenderChecked(traces[i], r)))
		got.Traces = append(got.Traces, crashTraceStats{
			Name:        traces[i].Name,
			Accepted:    r.Accepted,
			CrashPoints: r.CrashPoints,
			Steps:       r.Steps,
			MaxStates:   r.MaxStates,
			SumStates:   r.SumStates,
		})
		got.CrashPointsTotal += r.CrashPoints
		if r.MaxStates > got.PeakStates {
			got.PeakStates = r.MaxStates
		}
		if !r.Accepted {
			t.Errorf("crash script %s rejected by the oracle:\n%s",
				traces[i].Name, RenderChecked(traces[i], r))
		}
	}
	got.CheckedSHA = hex.EncodeToString(h.Sum(nil))
	if got.CrashPointsTotal == 0 {
		t.Fatal("crash universe hit no crash points")
	}

	path := filepath.Join("testdata", "crash_golden.json")
	if os.Getenv("SFS_WRITE_CRASH_GOLDEN") != "" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing crash golden fixture (regenerate with SFS_WRITE_CRASH_GOLDEN=1): %v", err)
	}
	var want crashGoldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if got.CheckedSHA != want.CheckedSHA {
		t.Errorf("checked-trace digest %s, want %s (crash diagnoses changed)", got.CheckedSHA, want.CheckedSHA)
	}
	if got.CrashPointsTotal != want.CrashPointsTotal || got.PeakStates != want.PeakStates {
		t.Errorf("crash points/peak = %d/%d, want %d/%d",
			got.CrashPointsTotal, got.PeakStates, want.CrashPointsTotal, want.PeakStates)
	}
	if len(got.Traces) != len(want.Traces) {
		t.Fatalf("%d traces, want %d", len(got.Traces), len(want.Traces))
	}
	for i := range got.Traces {
		if got.Traces[i] != want.Traces[i] {
			t.Errorf("trace %s: %+v, want %+v", got.Traces[i].Name, got.Traces[i], want.Traces[i])
		}
	}
}

// runCrashPipeline runs the crash universe through the cache-backed
// pipeline and returns the digest over the records' checked-trace bytes
// plus the run stats.
func runCrashPipeline(t *testing.T, cacheDir string, noMemo bool) (string, PipelineStats) {
	t.Helper()
	cfg := pipeline.Config{
		Name:         "crash golden",
		Scripts:      GenerateCrash(),
		Factory:      crashGoldenFactory(),
		FSName:       "ext4-crash",
		Spec:         crashGoldenSpec(),
		NoSharedCons: noMemo,
	}
	if cacheDir != "" {
		cache, err := pipeline.OpenCache(cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		defer cache.Close()
		cfg.Cache = cache
	}
	records, stats, err := pipeline.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, rec := range records {
		h.Write([]byte(rec.Checked))
		if !rec.Accepted {
			t.Errorf("pipeline rejected crash script %s", rec.Name)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), stats
}

// TestCrashGoldenParity pins byte-reproduction across execution
// strategies: cold vs warm cache (the warm run re-executes nothing) and
// transition memo on vs off all produce identical checked-trace bytes.
func TestCrashGoldenParity(t *testing.T) {
	dir := t.TempDir()
	coldSHA, coldStats := runCrashPipeline(t, dir, false)
	if coldStats.Executed != len(GenerateCrash()) {
		t.Fatalf("cold run executed %d of %d scripts", coldStats.Executed, len(GenerateCrash()))
	}
	warmSHA, warmStats := runCrashPipeline(t, dir, false)
	if warmStats.Executed != 0 {
		t.Fatalf("warm run re-executed %d scripts, want 0", warmStats.Executed)
	}
	if warmStats.CacheHits != coldStats.Jobs {
		t.Fatalf("warm run: %d cache hits, want %d", warmStats.CacheHits, coldStats.Jobs)
	}
	if warmSHA != coldSHA {
		t.Fatal("warm cache replayed different checked-trace bytes")
	}
	noMemoSHA, _ := runCrashPipeline(t, "", true)
	if noMemoSHA != coldSHA {
		t.Fatal("transition memo changed checked-trace bytes")
	}
	// And the fixture digest must agree with the direct-check digest path
	// (TestCrashGolden): same renderer, same bytes.
	if data, err := os.ReadFile(filepath.Join("testdata", "crash_golden.json")); err == nil {
		var want crashGoldenFile
		if err := json.Unmarshal(data, &want); err == nil && want.CheckedSHA != coldSHA {
			t.Errorf("pipeline digest %s disagrees with fixture %s", coldSHA, want.CheckedSHA)
		}
	}
}
