package sibylfs

// Session facade tests: parity with the legacy free-function path,
// cooperative cancellation with a resumable journal, and per-session
// coverage-registry isolation. The golden-parity test is the acceptance
// gate for the API redesign — the Session pipeline must be byte-identical
// to the legacy RunPipeline path against the recorded oracle fixtures.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSessionGoldenParity drives the same seq_slice7 suite once through
// the deprecated RunPipeline free function and once through Session.Run,
// and requires byte-identical records — then pins both against the golden
// oracle fixtures recorded with the pre-refactor engine.
func TestSessionGoldenParity(t *testing.T) {
	suite := Generate()
	var sel []*Script
	for i := 0; i < len(suite); i += 7 {
		sel = append(sel, suite[i])
	}

	legacy, legacyStats, err := RunPipeline(PipelineConfig{
		Name:    "seq_slice7",
		Scripts: sel,
		Factory: MemFS(LinuxProfile("ext4")),
		FSName:  "ext4",
		Spec:    DefaultSpec(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if legacyStats.Executed != len(sel) {
		t.Fatalf("legacy run not cold: %s", legacyStats)
	}

	session := New(WithSpec(DefaultSpec()))
	records, stats, err := session.Run(context.Background(), RunJob{
		Name:    "seq_slice7",
		Scripts: sel,
		Factory: MemFS(LinuxProfile("ext4")),
		FSName:  "ext4",
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != len(sel) {
		t.Fatalf("session run not cold: %s", stats)
	}
	if len(records) != len(legacy) {
		t.Fatalf("session produced %d records, legacy %d", len(records), len(legacy))
	}
	for i := range records {
		a, err := json.Marshal(records[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(legacy[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("record %d (%s) differs between Session and legacy paths:\n%s\n%s",
				i, records[i].Name, a, b)
		}
	}

	// Both paths agree; now pin them to the golden fixture.
	data, err := os.ReadFile(filepath.Join("testdata", "oracle_golden.json"))
	if err != nil {
		t.Fatalf("missing golden fixtures: %v", err)
	}
	var want map[string]*goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	w, ok := want["seq_slice7"]
	if !ok {
		t.Fatal("no golden record seq_slice7")
	}
	h := sha256.New()
	for _, rec := range records {
		h.Write([]byte(rec.Checked))
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != w.CheckedSHA {
		t.Errorf("session checked-trace digest %s, want golden %s", got, w.CheckedSHA)
	}
}

// smallSuite returns a deterministic slice of the generated suite, big
// enough to span several worker dispatches.
func smallSuite(t *testing.T, n int) []*Script {
	t.Helper()
	suite := Generate()
	if len(suite) < n*50 {
		t.Fatalf("suite unexpectedly small: %d", len(suite))
	}
	var sel []*Script
	for i := 0; i < len(suite) && len(sel) < n; i += 50 {
		sel = append(sel, suite[i])
	}
	return sel
}

// TestSessionRunCancelResume cancels a pipeline run mid-flight via the
// observer, then proves the journal is valid and that a -resume-style
// session completes it with output byte-identical to an uninterrupted
// run.
func TestSessionRunCancelResume(t *testing.T) {
	scripts := smallSuite(t, 30)
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.jsonl")
	killed := filepath.Join(dir, "killed.jsonl")

	job := func() RunJob {
		return RunJob{
			Name:    "cancel-resume",
			Scripts: scripts,
			Factory: MemFS(LinuxProfile("ext4")),
			FSName:  "ext4",
		}
	}

	// Baseline: uninterrupted run, finalized journal.
	if _, _, err := New(WithJournal(clean)).Run(context.Background(), job()); err != nil {
		t.Fatal(err)
	}

	// Cancelled run: the observer pulls the plug after the third record.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen int
	var mu sync.Mutex
	session := New(
		WithJournal(killed),
		WithWorkers(2),
		WithObserver(func(PipelineRecord) {
			mu.Lock()
			seen++
			if seen == 3 {
				cancel()
			}
			mu.Unlock()
		}),
	)
	_, _, err := session.Run(ctx, job())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: got err %v, want context.Canceled", err)
	}

	// The journal must hold ≥ the records observed before the cancel and
	// parse cleanly (append order, not finalized).
	partial, err := OpenResultSink(killed, true)
	if err != nil {
		t.Fatalf("cancelled journal unreadable: %v", err)
	}
	got := partial.Len()
	partial.Close()
	if got < 3 || got >= len(scripts) {
		t.Fatalf("cancelled journal holds %d records, want a strict partial ≥ 3 of %d", got, len(scripts))
	}

	// Resume: a fresh session over the same journal completes the suite
	// without touching journaled jobs, and finalizes.
	resumed := New(WithJournal(killed), WithResume())
	_, stats, err := resumed.Run(context.Background(), job())
	if err != nil {
		t.Fatal(err)
	}
	if stats.SinkSkipped != got {
		t.Fatalf("resume skipped %d journaled jobs, want %d", stats.SinkSkipped, got)
	}
	if stats.Executed != len(scripts)-got {
		t.Fatalf("resume executed %d, want %d", stats.Executed, len(scripts)-got)
	}

	a, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(killed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("resumed journal is not byte-identical to the uninterrupted run's")
	}
}

// TestSessionRunPreCancelled: a context cancelled before Run starts must
// stop promptly, execute nothing, and still leave a valid (empty)
// journal.
func TestSessionRunPreCancelled(t *testing.T) {
	scripts := smallSuite(t, 10)
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, stats, err := New(WithJournal(journal)).Run(ctx, RunJob{
		Name:    "pre-cancelled",
		Scripts: scripts,
		Factory: MemFS(LinuxProfile("ext4")),
		FSName:  "ext4",
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if stats.Executed != 0 {
		t.Fatalf("pre-cancelled run executed %d jobs", stats.Executed)
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("journal missing after pre-cancelled run: %v", err)
	}
}

// TestSessionCheckParity: Session.Check must agree exactly with the
// legacy Check free function.
func TestSessionCheckParity(t *testing.T) {
	scripts := smallSuite(t, 20)
	traces, err := New().Execute(context.Background(), scripts, MemFS(LinuxProfile("ext4")))
	if err != nil {
		t.Fatal(err)
	}
	legacy := Check(DefaultSpec(), traces, 4)
	session, err := New(WithSpec(DefaultSpec()), WithWorkers(4)).Check(context.Background(), traces)
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacy {
		// TauNanos is wall-clock telemetry — never equal across two runs
		// and not part of the parity contract.
		legacy[i].TauNanos, session[i].TauNanos = 0, 0
		a, _ := json.Marshal(legacy[i])
		b, _ := json.Marshal(session[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("trace %s: session result differs from legacy:\n%s\n%s", traces[i].Name, b, a)
		}
	}
}

// TestSessionFuzzContextEnd: a fuzz session bounded only by a context
// deadline runs and ends gracefully, reporting results instead of an
// error.
func TestSessionFuzzContextEnd(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	session := New(WithSpec(DefaultSpec()), WithWorkers(2))
	res, err := session.Fuzz(ctx, FuzzJob{
		Name:    "ctx-bounded",
		Factory: MemFS(LinuxProfile("ext4")),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 {
		t.Fatal("deadline-bounded fuzz session executed no candidates")
	}
	if res.Findings != nil && len(res.Findings) > 0 {
		t.Fatalf("conforming memfs produced findings: %v", res.Findings[0].Name)
	}
}

// TestSessionFuzzUnbounded: without MaxRuns or a deadline the session
// must refuse to start rather than spin forever.
func TestSessionFuzzUnbounded(t *testing.T) {
	_, err := New().Fuzz(context.Background(), FuzzJob{
		Name:    "unbounded",
		Factory: MemFS(LinuxProfile("ext4")),
	})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("got %v, want an unbounded-session error naming the deadline", err)
	}
}

// mkdirScript/symlinkScript are disjoint single-command fixtures for the
// coverage-isolation test: checking one can never hit the other's
// command-specific model points.
func parseScriptOrDie(t *testing.T, text string) *Script {
	t.Helper()
	s, err := ParseScript(text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestConcurrentSessionCoverageIsolation runs two sessions with private
// coverage registries concurrently and proves their counters do not
// bleed: each registry sees exactly the points of its own session's
// checking — byte-identical to a solo baseline — and none of the other
// command's points. Run under -race this also pins the registry windows
// race-clean.
func TestConcurrentSessionCoverageIsolation(t *testing.T) {
	mkdirS := parseScriptOrDie(t, "@type script\n# Test mkdir_iso\nmkdir \"d\" 0o755\n")
	symlinkS := parseScriptOrDie(t, "@type script\n# Test symlink_iso\nsymlink \"t\" \"l\"\n")

	const iters = 5
	runChecks := func(reg *CoverageRegistry, s *Script) error {
		opts := []Option{WithSpec(DefaultSpec()), WithWorkers(2)}
		if reg != nil {
			opts = append(opts, WithCoverage(reg))
		}
		session := New(opts...)
		for i := 0; i < iters; i++ {
			traces, err := session.Execute(context.Background(), []*Script{s}, MemFS(LinuxProfile("ext4")))
			if err != nil {
				return err
			}
			if _, err := session.Check(context.Background(), traces); err != nil {
				return err
			}
		}
		return nil
	}

	// Solo baselines: what each session's registry must end up holding.
	baseMkdir, baseSymlink := NewCoverageRegistry(), NewCoverageRegistry()
	if err := runChecks(baseMkdir, mkdirS); err != nil {
		t.Fatal(err)
	}
	if err := runChecks(baseSymlink, symlinkS); err != nil {
		t.Fatal(err)
	}

	regA, regB := NewCoverageRegistry(), NewCoverageRegistry()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	wg.Add(3)
	go func() { defer wg.Done(); errs[0] = runChecks(regA, mkdirS) }()
	go func() { defer wg.Done(); errs[1] = runChecks(regB, symlinkS) }()
	go func() {
		// A third session on the *shared* registry churns concurrently:
		// its evaluation runs under cov.Guard, so none of its symlink hits
		// may leak into the isolated registries' windows.
		defer wg.Done()
		errs[2] = runChecks(nil, symlinkS)
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	snapshot := func(r *CoverageRegistry) map[string]uint64 {
		ids, counts := r.Snapshot()
		m := make(map[string]uint64, len(ids))
		for i, id := range ids {
			if counts[i] > 0 {
				m[id] = counts[i]
			}
		}
		return m
	}
	a, b := snapshot(regA), snapshot(regB)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("registries recorded no coverage at all")
	}
	if a["fsspec/mkdir/ok"] == 0 {
		t.Error("mkdir session registry missed fsspec/mkdir/ok")
	}
	if b["fsspec/symlink/ok"] == 0 {
		t.Error("symlink session registry missed fsspec/symlink/ok")
	}
	for id := range a {
		if strings.HasPrefix(id, "fsspec/symlink/") {
			t.Errorf("mkdir session registry bled symlink point %s", id)
		}
	}
	for id := range b {
		if strings.HasPrefix(id, "fsspec/mkdir/") {
			t.Errorf("symlink session registry bled mkdir point %s", id)
		}
	}

	// Exactness, not just disjointness: concurrent counters match the solo
	// baselines point for point.
	wantA, wantB := snapshot(baseMkdir), snapshot(baseSymlink)
	for id, n := range wantA {
		if a[id] != n {
			t.Errorf("mkdir registry %s = %d, solo baseline %d", id, a[id], n)
		}
	}
	if len(a) != len(wantA) {
		t.Errorf("mkdir registry holds %d hit points, baseline %d", len(a), len(wantA))
	}
	for id, n := range wantB {
		if b[id] != n {
			t.Errorf("symlink registry %s = %d, solo baseline %d", id, b[id], n)
		}
	}
	if len(b) != len(wantB) {
		t.Errorf("symlink registry holds %d hit points, baseline %d", len(b), len(wantB))
	}
}

// TestSessionObserverStreams: the observer sees every record exactly
// once, including cache hits on a warm run.
func TestSessionObserverStreams(t *testing.T) {
	scripts := smallSuite(t, 12)
	cacheDir := t.TempDir()
	run := func() (int, PipelineStats) {
		var n int
		var mu sync.Mutex
		session := New(
			WithCacheDir(cacheDir),
			WithObserver(func(PipelineRecord) { mu.Lock(); n++; mu.Unlock() }),
		)
		_, stats, err := session.Run(context.Background(), RunJob{
			Name:    "observer",
			Scripts: scripts,
			Factory: MemFS(LinuxProfile("ext4")),
			FSName:  "ext4",
		})
		if err != nil {
			t.Fatal(err)
		}
		return n, stats
	}
	if n, stats := run(); n != len(scripts) || stats.Executed != len(scripts) {
		t.Fatalf("cold run: observer saw %d records (stats %s)", n, stats)
	}
	if n, stats := run(); n != len(scripts) || stats.CacheHits != len(scripts) {
		t.Fatalf("warm run: observer saw %d records (stats %s)", n, stats)
	}
}
