package sibylfs

// The concurrent-execution experiments: the oracle must absorb genuine
// call interleaving from multiple processes (§3's concurrency claim),
// and the conforming in-memory Linux implementation must stay inside the
// model's envelope under every schedule.

import (
	"testing"
)

// TestConcurrentSuiteConforms drives the concurrent universe through the
// seeded scheduler against conforming Linux memfs: every trace must be
// accepted, and at least one must push the tracked state set to ≥ 4 —
// the τ-closure doing real work (§7.1's MaxStates metric).
func TestConcurrentSuiteConforms(t *testing.T) {
	scripts := GenerateConcurrent()
	if len(scripts) < 10 {
		t.Fatalf("concurrent universe has only %d scripts", len(scripts))
	}
	peak := 0
	var totalTau int
	for _, seed := range []int64{1, 2} {
		traces, err := ExecuteConcurrent(scripts, MemFS(LinuxProfile("ext4")),
			ConcurrentOptions{Seeded: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		results := Check(DefaultSpec(), traces, 0)
		for i, r := range results {
			if !r.Accepted {
				t.Errorf("seed %d: %s rejected:\n%s", seed, r.Name, RenderChecked(traces[i], r))
				continue
			}
			if r.MaxStates > peak {
				peak = r.MaxStates
			}
			totalTau += r.TauExpansions
		}
	}
	if peak < 4 {
		t.Errorf("peak MaxStates = %d, want ≥ 4: concurrency never stressed the oracle", peak)
	}
	if totalTau == 0 {
		t.Error("no τ-expansions recorded on concurrent traces")
	}
	t.Logf("concurrent universe: %d scripts, peak MaxStates %d, %d τ-expansions", len(scripts), peak, totalTau)
}

// TestConcurrentFreeRunningConforms runs a slice of the universe with
// free-running goroutines (the schedule the Go runtime happens to pick —
// under -race this doubles as the executor/memfs race test) and checks
// every observed interleaving is in the envelope.
func TestConcurrentFreeRunningConforms(t *testing.T) {
	scripts := GenerateConcurrent()
	traces, err := ExecuteConcurrent(scripts, MemFS(LinuxProfile("ext4")), ConcurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results := Check(DefaultSpec(), traces, 0)
	for i, r := range results {
		if !r.Accepted {
			t.Errorf("%s rejected:\n%s", r.Name, RenderChecked(traces[i], r))
		}
	}
}

// TestConcurrentSequentialFallback: the same scripts are valid sequential
// multi-process scripts; the ordinary executor and checker must agree.
func TestConcurrentSequentialFallback(t *testing.T) {
	scripts := GenerateConcurrent()
	traces, err := Execute(scripts, MemFS(LinuxProfile("ext4")), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Check(DefaultSpec(), traces, 0) {
		if !r.Accepted {
			t.Errorf("%s rejected under sequential execution", r.Name)
		}
	}
}
