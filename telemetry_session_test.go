package sibylfs

// Session-level telemetry contracts: per-session registries never bleed
// into each other, and instrumentation never alters checked-trace output
// — the finalized JSONL of an instrumented run is byte-identical to an
// uninstrumented one, and the golden parity digest holds with a private
// registry installed.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestConcurrentSessionTelemetryIsolation runs two sessions with private
// telemetry registries concurrently over different-sized suites and
// proves each registry holds exactly its own session's figures.
func TestConcurrentSessionTelemetryIsolation(t *testing.T) {
	suite := Generate()
	scriptsA, scriptsB := suite[:6], suite[6:16]

	run := func(reg *TelemetryRegistry, scripts []*Script, name string) error {
		s := New(WithSpec(DefaultSpec()), WithWorkers(2), WithTelemetry(reg))
		_, _, err := s.Run(context.Background(), RunJob{
			Name:    name,
			Scripts: scripts,
			Factory: MemFS(LinuxProfile("ext4")),
			FSName:  "ext4",
		})
		return err
	}

	regA, regB := NewTelemetryRegistry(), NewTelemetryRegistry()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = run(regA, scriptsA, "iso a") }()
	go func() { defer wg.Done(); errs[1] = run(regB, scriptsB, "iso b") }()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, c := range []struct {
		reg  *TelemetryRegistry
		want int64
	}{{regA, int64(len(scriptsA))}, {regB, int64(len(scriptsB))}} {
		for _, name := range []string{"pipeline.jobs", "pipeline.executed", "checker.traces", "journal.appends"} {
			if name == "journal.appends" {
				continue // no journal configured in this test
			}
			if got := c.reg.Counter(name).Value(); got != c.want {
				t.Errorf("%s = %d, want exactly this session's %d", name, got, c.want)
			}
		}
		// The session span and the pipeline span landed in the same
		// registry, once each.
		for _, span := range []string{"span.session.run", "span.pipeline.run"} {
			if got := c.reg.Histogram(span).Count(); got != 1 {
				t.Errorf("%s count = %d, want 1", span, got)
			}
		}
	}
}

// TestPipelineGoldenParityWithTelemetry re-runs the sequential golden
// parity fixture with an isolated telemetry registry installed: the
// checked-trace digest must not move (telemetry is purely observational),
// and the registry must have attributed every trace.
func TestPipelineGoldenParityWithTelemetry(t *testing.T) {
	suite := Generate()
	var sel []*Script
	for i := 0; i < len(suite); i += 7 {
		sel = append(sel, suite[i])
	}
	reg := NewTelemetryRegistry()
	pipelineGolden(t, "seq_slice7", PipelineConfig{
		Name:    "seq_slice7",
		Scripts: sel,
		Factory: MemFS(LinuxProfile("ext4")),
		FSName:  "ext4",
		Spec:    DefaultSpec(),
		Tel:     reg,
	})
	if got := reg.Counter("checker.traces").Value(); got != int64(len(sel)) {
		t.Errorf("checker.traces = %d, want %d", got, len(sel))
	}
	if got := reg.Histogram("pipeline.job_ns").Count(); got != int64(len(sel)) {
		t.Errorf("pipeline.job_ns count = %d, want %d", got, len(sel))
	}
}

// TestTelemetryJournalByteIdentity pins the "never alters output"
// contract directly: the finalized JSONL of a run with a private
// registry is byte-identical to an uninstrumented run of the same suite.
func TestTelemetryJournalByteIdentity(t *testing.T) {
	suite := Generate()
	var sel []*Script
	for i := 0; i < len(suite); i += 97 {
		sel = append(sel, suite[i])
	}
	dir := t.TempDir()
	runTo := func(path string, extra ...Option) []byte {
		t.Helper()
		opts := append([]Option{
			WithSpec(DefaultSpec()),
			WithWorkers(4),
			WithJournal(path),
		}, extra...)
		s := New(opts...)
		if _, _, err := s.Run(context.Background(), RunJob{
			Name:    "ident",
			Scripts: sel,
			Factory: MemFS(LinuxProfile("ext4")),
			FSName:  "ext4",
		}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	plain := runTo(filepath.Join(dir, "plain.jsonl"))
	instr := runTo(filepath.Join(dir, "instrumented.jsonl"), WithTelemetry(NewTelemetryRegistry()))
	if !bytes.Equal(plain, instr) {
		t.Error("telemetry changed the finalized JSONL output")
	}
}
