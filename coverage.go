package sibylfs

import "repro/internal/cov"

func covStats() (int, int) { return cov.Stats() }
func covUnhit() []string   { return cov.Unhit() }
func covReset()            { cov.Reset() }
