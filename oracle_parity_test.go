package sibylfs

// Oracle-parity golden fixtures: the refactored state engine (hash-consed
// copy-on-write states, parallel τ-closure) must be observationally
// identical to the naive deep-copy engine it replaced. This test pins every
// checker observable — acceptance, diagnoses (via a digest of the rendered
// checked traces), Steps, MaxStates, TauExpansions and SumStates — for the
// concurrent universe (seeded scheduler, seed 1) and a deterministic slice
// of the sequential suite, against fixtures recorded with the old engine.
//
// Regenerate with:
//
//	SFS_WRITE_ORACLE_GOLDEN=1 go test -run TestOracleGolden .
//
// but only after convincing yourself the behaviour change is intended: a
// diff here means the oracle's verdict or its state-set trajectory moved.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// traceStats is the per-trace observable record.
type traceStats struct {
	Name          string `json:"name"`
	Accepted      bool   `json:"accepted"`
	Errors        int    `json:"errors"`
	Steps         int    `json:"steps"`
	MaxStates     int    `json:"max_states"`
	TauExpansions int    `json:"tau_expansions"`
	SumStates     int    `json:"sum_states"`
}

// goldenFile is the fixture layout: per-trace stats plus one digest over
// every rendered checked trace (byte-identical diagnoses).
type goldenFile struct {
	Config         string       `json:"config"`
	CheckedSHA     string       `json:"checked_sha256"`
	PeakStates     int          `json:"peak_states"`
	TauTotal       int          `json:"tau_expansions_total"`
	SumStatesTotal int          `json:"sum_states_total"`
	StepsTotal     int          `json:"steps_total"`
	Traces         []traceStats `json:"traces,omitempty"`
	RejectedOnly   []string     `json:"rejected,omitempty"`
}

func collectGolden(t *testing.T, config string, traces []*Trace, perTrace bool) *goldenFile {
	t.Helper()
	results := Check(DefaultSpec(), traces, 0)
	g := &goldenFile{Config: config}
	h := sha256.New()
	for i, r := range results {
		h.Write([]byte(RenderChecked(traces[i], r)))
		if perTrace {
			g.Traces = append(g.Traces, traceStats{
				Name:          traces[i].Name,
				Accepted:      r.Accepted,
				Errors:        len(r.Errors),
				Steps:         r.Steps,
				MaxStates:     r.MaxStates,
				TauExpansions: r.TauExpansions,
				SumStates:     r.SumStates,
			})
		}
		if r.MaxStates > g.PeakStates {
			g.PeakStates = r.MaxStates
		}
		g.TauTotal += r.TauExpansions
		g.SumStatesTotal += r.SumStates
		g.StepsTotal += r.Steps
		if !r.Accepted {
			g.RejectedOnly = append(g.RejectedOnly, traces[i].Name)
		}
	}
	g.CheckedSHA = hex.EncodeToString(h.Sum(nil))
	return g
}

// goldenTraces builds the two deterministic workloads: the full concurrent
// universe under the seeded scheduler, and every 7th sequential script (a
// stable ~15% slice keeping the short-mode runtime reasonable while
// covering all command groups).
func goldenTraces(t *testing.T) (conc, seq []*Trace) {
	t.Helper()
	concScripts := GenerateConcurrent()
	var err error
	conc, err = ExecuteConcurrent(concScripts, MemFS(LinuxProfile("ext4")),
		ConcurrentOptions{Seeded: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	suite := Generate()
	var sel []*Script
	for i := 0; i < len(suite); i += 7 {
		sel = append(sel, suite[i])
	}
	seq, err = Execute(sel, MemFS(LinuxProfile("ext4")), 0)
	if err != nil {
		t.Fatal(err)
	}
	return conc, seq
}

func TestOracleGolden(t *testing.T) {
	conc, seq := goldenTraces(t)
	got := map[string]*goldenFile{
		"conc_seed1": collectGolden(t, "conc_seed1", conc, true),
		"seq_slice7": collectGolden(t, "seq_slice7", seq, true),
	}
	if !testing.Short() {
		// The full sequential suite: aggregates and the diagnosis digest
		// only (the per-trace list would dwarf the repo).
		full, err := Execute(Generate(), MemFS(LinuxProfile("ext4")), 0)
		if err != nil {
			t.Fatal(err)
		}
		got["seq_full"] = collectGolden(t, "seq_full", full, false)
	}
	path := filepath.Join("testdata", "oracle_golden.json")
	if os.Getenv("SFS_WRITE_ORACLE_GOLDEN") != "" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixtures (regenerate with SFS_WRITE_ORACLE_GOLDEN=1): %v", err)
	}
	var want map[string]*goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for cfg, g := range got {
		w, ok := want[cfg]
		if !ok {
			t.Errorf("%s: no golden record", cfg)
			continue
		}
		if g.CheckedSHA != w.CheckedSHA {
			t.Errorf("%s: checked-trace digest %s, want %s (diagnoses changed)",
				cfg, g.CheckedSHA, w.CheckedSHA)
		}
		if g.PeakStates != w.PeakStates || g.TauTotal != w.TauTotal ||
			g.SumStatesTotal != w.SumStatesTotal || g.StepsTotal != w.StepsTotal {
			t.Errorf("%s: peak/τ/sum/steps = %d/%d/%d/%d, want %d/%d/%d/%d",
				cfg, g.PeakStates, g.TauTotal, g.SumStatesTotal, g.StepsTotal,
				w.PeakStates, w.TauTotal, w.SumStatesTotal, w.StepsTotal)
		}
		if len(g.Traces) != len(w.Traces) {
			t.Errorf("%s: %d traces, want %d", cfg, len(g.Traces), len(w.Traces))
			continue
		}
		for i := range g.Traces {
			if g.Traces[i] != w.Traces[i] {
				t.Errorf("%s: trace %s: %+v, want %+v",
					cfg, g.Traces[i].Name, g.Traces[i], w.Traces[i])
			}
		}
	}
}
