package sibylfs

import (
	"context"

	"repro/internal/fuzz"
)

// Fuzzing vocabulary, re-exported: a coverage-guided mutation fuzzer over
// test scripts (the feedback loop of §8/§9's future work; see
// internal/fuzz and cmd/sfs-fuzz).
type (
	// FuzzConfig parameterises a fuzzing session.
	FuzzConfig = fuzz.Config
	// FuzzResult is the outcome of a session.
	FuzzResult = fuzz.Result
	// FuzzFinding is one minimized defect the fuzzer discovered.
	FuzzFinding = fuzz.Finding
)

// Fuzz runs a coverage-guided fuzzing session: mutated scripts are
// executed via the configured Factory, checked against the model, admitted
// to the corpus when they reach new model coverage points, and minimized
// into findings when the oracle rejects them.
//
//	cfg := sibylfs.FuzzConfig{
//	    Factory:  sibylfs.MemFS(sibylfs.LinuxProfile("ext4")),
//	    Spec:     sibylfs.DefaultSpec(),
//	    Duration: 30 * time.Second,
//	    Workers:  4,
//	}
//	res, err := sibylfs.Fuzz(cfg)
//
// Deprecated: use Session.Fuzz — the session supplies spec, workers,
// result cache and coverage registry, and the wall-clock bound is the
// context deadline instead of Config.Duration.
func Fuzz(cfg FuzzConfig) (*FuzzResult, error) { return fuzz.Run(context.Background(), cfg) }
