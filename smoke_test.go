package sibylfs

import (
	"testing"

	"repro/internal/fsimpl"
)

// TestSmokePipeline is the end-to-end sanity check: a handful of scripts
// executed against the determinized model and against memfs must be
// accepted by the oracle.
func TestSmokePipeline(t *testing.T) {
	scriptText := `@type script
# Test rename___rename_emptydir___nonemptydir
mkdir "emptydir" 0o777
mkdir "nonemptydir" 0o777
open "nonemptydir/f" [O_CREAT;O_WRONLY] 0o666
rename "emptydir" "nonemptydir"
`
	s, err := ParseScript(scriptText)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, factory := range []Factory{
		SpecFS("spec", DefaultSpec()),
		MemFS(LinuxProfile("ext4")),
	} {
		tr, err := ExecuteOne(s, factory)
		if err != nil {
			t.Fatalf("exec: %v", err)
		}
		r := CheckOne(DefaultSpec(), tr)
		if !r.Accepted {
			t.Errorf("trace not accepted:\n%s", RenderChecked(tr, r))
		}
	}
}

// TestSmokeSSHFSRenameEPERM reproduces Fig 4: SSHFS returning EPERM for a
// rename of an empty dir onto a non-empty dir is rejected with the right
// diagnosis.
func TestSmokeSSHFSRenameEPERM(t *testing.T) {
	traceText := `@type trace
# Test rename___rename_emptydir___nonemptydir
1: mkdir "emptydir" 0o777
1: RV_none
1: mkdir "nonemptydir" 0o777
1: RV_none
1: open "nonemptydir/f" [O_CREAT;O_WRONLY] 0o666
1: RV_file_descriptor(FD 3)
1: rename "emptydir" "nonemptydir"
1: EPERM
`
	tr, err := ParseTrace(traceText)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r := CheckOne(DefaultSpec(), tr)
	if r.Accepted {
		t.Fatalf("EPERM rename should be rejected")
	}
	if len(r.Errors) != 1 {
		t.Fatalf("want 1 error, got %+v", r.Errors)
	}
	got := r.Errors[0].Allowed
	want := map[string]bool{"EEXIST": true, "ENOTEMPTY": true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Errorf("allowed = %v, want EEXIST and ENOTEMPTY", got)
	}
}

// TestSmokeSuiteSample executes a slice of the generated suite on the
// conforming Linux memfs and checks acceptance.
func TestSmokeSuiteSample(t *testing.T) {
	suite := Generate()
	if len(suite) < 1000 {
		t.Fatalf("suite too small: %d", len(suite))
	}
	sample := suite[:0:0]
	for i := 0; i < len(suite); i += 97 {
		sample = append(sample, suite[i])
	}
	traces, err := Execute(sample, MemFS(fsimpl.LinuxProfile("ext4")), 0)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	results := Check(DefaultSpec(), traces, 0)
	bad := 0
	for i, r := range results {
		if !r.Accepted {
			bad++
			if bad <= 5 {
				t.Logf("rejected:\n%s", RenderChecked(traces[i], r))
			}
		}
	}
	if bad > 0 {
		t.Errorf("%d/%d sampled traces rejected", bad, len(sample))
	}
}
