package sibylfs

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/fsimpl"
	"repro/internal/types"
)

// Config is one survey configuration: an implementation under test paired
// with the model variant its traces are checked against.
type Config struct {
	Name    string
	Factory Factory
	Spec    Spec
	// Serial forces single-worker execution (hostfs's process-global
	// umask).
	Serial bool
	// SkipUserScripts excludes scripts that switch credentials
	// (hostfs runs everything as the harness user).
	SkipUserScripts bool
}

// Configurations returns the survey matrix: conforming baselines for every
// platform, one profile per catalogued §7.3 defect, several conforming
// Linux file systems (distinct configurations, behaviourally alike — as
// ext2/ext3/ext4 are in the paper), the determinized model, and the real
// host kernel; most are checked both against their native variant and
// against strict POSIX, mirroring the paper's >40 system configurations.
func Configurations() []Config {
	var out []Config
	add := func(c Config) { out = append(out, c) }

	profiles := fsimpl.SurveyProfiles()
	// Conforming Linux file systems beyond ext4: distinct configurations
	// sharing the conforming profile.
	for _, alias := range []string{"ext2", "ext3", "tmpfs", "xfs", "f2fs", "nilfs2", "minix"} {
		profiles = append(profiles, fsimpl.LinuxProfile(alias))
	}
	for _, p := range profiles {
		p := p
		native := SpecFor(p.Platform)
		add(Config{
			Name:    fmt.Sprintf("%s vs %s", p.Name, native.Platform),
			Factory: fsimpl.MemFactory(p),
			Spec:    native,
		})
		if p.Platform != types.PlatformPOSIX {
			add(Config{
				Name:    fmt.Sprintf("%s vs posix", p.Name),
				Factory: fsimpl.MemFactory(p),
				Spec:    SpecFor(POSIX),
			})
		}
	}
	for _, pl := range []Platform{POSIX, Linux, OSX, FreeBSD} {
		pl := pl
		name := fmt.Sprintf("specfs_%s", pl)
		add(Config{
			Name:    fmt.Sprintf("%s vs %s", name, pl),
			Factory: fsimpl.SpecFactory(name, SpecFor(pl)),
			Spec:    SpecFor(pl),
		})
	}
	add(Config{
		Name:            "hostfs vs linux",
		Factory:         fsimpl.HostFactory("hostfs"),
		Spec:            SpecFor(Linux),
		Serial:          true,
		SkipUserScripts: true,
	})
	add(Config{
		Name:            "hostfs vs posix",
		Factory:         fsimpl.HostFactory("hostfs"),
		Spec:            SpecFor(POSIX),
		Serial:          true,
		SkipUserScripts: true,
	})
	return out
}

// SurveyResult is the outcome of running one configuration.
type SurveyResult struct {
	Config  Config
	Summary *analysis.RunSummary
}

// SurveyOptions wires the survey through the pipeline's persistence: a
// shared result cache (unchanged configurations re-summarise without
// re-executing anything) and a JSONL sink per configuration, resumable
// after a kill.
type SurveyOptions struct {
	// CacheDir, when non-empty, backs every configuration with one shared
	// content-addressed result cache.
	CacheDir string
	// JSONLDir, when non-empty, streams each configuration's records to
	// JSONLDir/<config>.jsonl (finalized in canonical order).
	JSONLDir string
	// Resume recovers existing sinks instead of replacing them.
	Resume bool
}

// RunSurvey executes scripts on every configuration and summarises the
// deviations (the §7.3 survey). workers applies per configuration. Each
// configuration streams through the checking pipeline: summaries are
// aggregated from per-trace records, so no configuration ever holds its
// full ([]Trace, []Result) pair in memory.
//
// Deprecated: use Session.Survey, which is cancellable and carries
// workers/cache/journals as session options.
func RunSurvey(scripts []*Script, configs []Config, workers int) ([]SurveyResult, error) {
	return RunSurveyWith(scripts, configs, workers, SurveyOptions{})
}

// RunSurveyWith is RunSurvey with the pipeline's cache and JSONL sinks
// attached (see SurveyOptions).
//
// Deprecated: use Session.Survey with WithCacheDir/WithJournalDir/
// WithResume.
func RunSurveyWith(scripts []*Script, configs []Config, workers int, opts SurveyOptions) ([]SurveyResult, error) {
	sessionOpts := []Option{WithWorkers(workers)}
	if opts.CacheDir != "" {
		sessionOpts = append(sessionOpts, WithCacheDir(opts.CacheDir))
	}
	if opts.JSONLDir != "" {
		sessionOpts = append(sessionOpts, WithJournalDir(opts.JSONLDir))
	}
	if opts.Resume {
		sessionOpts = append(sessionOpts, WithResume())
	}
	return New(sessionOpts...).Survey(context.Background(), scripts, configs)
}

// FilterHostSafe drops scripts that switch credentials or belong to the
// multi-user permission group.
func FilterHostSafe(scripts []*Script) []*Script {
	var out []*Script
	for _, s := range scripts {
		if hostSafeScript(s) {
			out = append(out, s)
		}
	}
	return out
}

func hostSafeScript(s *Script) bool {
	if GroupOfName(s.Name) == "perm" {
		return false
	}
	for _, st := range s.Steps {
		switch l := st.Label.(type) {
		case types.CreateLabel:
			if l.Uid != 0 {
				return false
			}
		case types.CallLabel:
			// Absolute symlink targets would escape the temp-dir jail
			// (a real chroot, as the paper used, confines them).
			if sl, ok := l.Cmd.(types.Symlink); ok && len(sl.Target) > 0 && sl.Target[0] == '/' {
				return false
			}
		}
	}
	return true
}

// MergeSurvey merges the per-configuration summaries, exposing the tests
// that distinguish configurations.
func MergeSurvey(results []SurveyResult) *analysis.Merged {
	runs := make([]*analysis.RunSummary, len(results))
	for i, r := range results {
		runs[i] = r.Summary
	}
	return analysis.Merge(runs)
}
