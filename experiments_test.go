package sibylfs

// The experiments: one test per table/figure of the paper's evaluation
// (§6.1, §7.1, §7.2, §7.3, Fig 7, Fig 8). EXPERIMENTS.md records the
// paper-vs-measured comparison; these tests assert the *shape* of each
// result. The heavy whole-suite runs are skipped with -short.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
)

// TestTable61SuiteSize — §6.1: the suite has the paper's order of 21 070
// scripts, with rename dominating two-path testing (≈2 500 in the paper
// vs OpenGroup's ≈50 rename tests).
func TestTable61SuiteSize(t *testing.T) {
	suite := Generate()
	if len(suite) < 20000 {
		t.Fatalf("suite = %d scripts, want ≥ 20 000 (paper: 21 070)", len(suite))
	}
	stats := SuiteStats(suite)
	if stats["rename"] < 500 {
		t.Errorf("rename = %d, want ≥ 500 (OpenGroup has ≈50)", stats["rename"])
	}
	if stats["open"] < 5000 {
		t.Errorf("open = %d, want ≥ 5 000 (largest flag matrix)", stats["open"])
	}
}

// TestTable72Acceptance — §7.2 "Trace acceptance": on the conforming Linux
// implementation, every generated trace is accepted by the Linux variant
// (the paper reports all but 9 of 21 070, the 9 being chroot-jail
// artifacts that our in-memory target does not suffer). Also measures
// model coverage (§7.2: 98%).
func TestTable72Acceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-suite run")
	}
	ResetCoverage()
	suite := Generate()
	traces, err := Execute(suite, MemFS(LinuxProfile("ext4")), 0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	results := Check(DefaultSpec(), traces, 4)
	elapsed := time.Since(start)
	bad := 0
	for i, r := range results {
		if !r.Accepted {
			bad++
			if bad <= 3 {
				t.Logf("rejected:\n%s", RenderChecked(traces[i], r))
			}
		}
	}
	if bad != 0 {
		t.Errorf("%d/%d traces rejected (paper: 9/21070, all jail artifacts)", bad, len(results))
	}
	rate := float64(len(traces)) / elapsed.Seconds()
	t.Logf("§7.1: checked %d traces in %v with 4 workers = %.0f traces/s (paper: 21070 in 79s = 266/s)",
		len(traces), elapsed.Round(time.Millisecond), rate)
	if rate < 100 {
		t.Errorf("checking rate %.0f traces/s below the paper's 266/s shape", rate)
	}

	// §7.2 coverage: the suite must exercise ≥95% of the model's coverage
	// points (paper: 98% of model lines).
	hit, total := Coverage()
	pct := 100 * float64(hit) / float64(total)
	t.Logf("§7.2: model coverage %d/%d points = %.1f%% (paper: 98%%)", hit, total, pct)
	if pct < 90 {
		t.Errorf("coverage %.1f%% too low; unhit: %v", pct, CoverageUnhit())
	}
}

// TestTable72HostAcceptance — §7.2 on the *real* kernel: the only failures
// are chroot-jail artifacts (the jail root is not a real root directory).
func TestTable72HostAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("host run")
	}
	all := FilterHostSafe(Generate())
	var sel []*Script
	for i, s := range all {
		if i%5 == 0 {
			sel = append(sel, s)
		}
	}
	traces, err := Execute(sel, HostFS("hostfs"), 1)
	if err != nil {
		t.Fatal(err)
	}
	results := Check(DefaultSpec(), traces, 0)
	var rejected []string
	for i, r := range results {
		if !r.Accepted {
			rejected = append(rejected, traces[i].Name)
			sev := analysis.Classify(traces[i].Name, r)
			if sev != analysis.SeverityJailArtifact {
				t.Errorf("host deviation %s has severity %v (expected only jail artifacts)",
					traces[i].Name, sev)
			}
		}
	}
	t.Logf("host: %d/%d rejected: %v (paper: 9/21070, chroot artifacts)", len(rejected), len(results), rejected)
	if len(rejected) > 10 {
		t.Errorf("too many host deviations: %d", len(rejected))
	}
}

// TestTable72SpecFSSelfCheck — the determinized model's own traces must be
// accepted with zero failures (by construction, a soundness check).
func TestTable72SpecFSSelfCheck(t *testing.T) {
	suite := Generate()
	stride := 41
	if testing.Short() {
		stride = 163 // a thinner but still cross-group sample
	}
	var sel []*Script
	for i, s := range suite {
		if i%stride == 0 {
			sel = append(sel, s)
		}
	}
	for _, pl := range []Platform{Linux, POSIX} {
		traces, err := Execute(sel, SpecFS("specfs", SpecFor(pl)), 0)
		if err != nil {
			t.Fatal(err)
		}
		results := Check(SpecFor(pl), traces, 0)
		for i, r := range results {
			if !r.Accepted {
				t.Errorf("%v: specfs trace rejected:\n%s", pl, RenderChecked(traces[i], r))
			}
		}
	}
}

// TestTable73Survey — §7.3: the survey across the configuration matrix
// finds every catalogued defect and nothing on the conforming baselines.
func TestTable73Survey(t *testing.T) {
	if testing.Short() {
		t.Skip("survey run")
	}
	configs := Configurations()
	if len(configs) < 40 {
		t.Fatalf("only %d configurations; paper surveys over 40", len(configs))
	}
	// Representative slice: all survey scripts plus a sample of the rest.
	var scripts []*Script
	for i, s := range Generate() {
		if GroupOfName(s.Name) == "survey" || i%29 == 0 {
			scripts = append(scripts, s)
		}
	}
	// Run the memfs configurations checked against their native variants
	// (cross-variant and host runs are covered by other tests).
	var sel []Config
	for _, c := range configs {
		if !strings.Contains(c.Name, "hostfs") && !strings.Contains(c.Name, " vs posix") {
			sel = append(sel, c)
		}
	}
	results, err := RunSurvey(scripts, sel, 0)
	if err != nil {
		t.Fatal(err)
	}
	bySummary := map[string]*analysis.RunSummary{}
	for _, r := range results {
		bySummary[strings.Split(r.Config.Name, " vs ")[0]] = r.Summary
		t.Logf("%s", r.Summary)
	}

	// Conforming Linux baselines are clean.
	for _, clean := range []string{"ext4", "ext2", "tmpfs", "xfs", "specfs_linux", "posix_reference"} {
		if s, ok := bySummary[clean]; ok && s.Rejected != 0 {
			t.Errorf("%s: %d deviations on a conforming implementation", clean, s.Rejected)
		}
	}
	// Each §7.3 defect is detected, with a critical finding where the
	// paper reports data loss / hangs / exhaustion.
	expectCritical := []string{"posixovl_vfat_1.2", "openzfs_1.3.0_osx", "openzfs_0.6.3_trusty"}
	for _, name := range expectCritical {
		s := bySummary[name]
		if s == nil || s.Rejected == 0 {
			t.Errorf("%s: defect not detected", name)
			continue
		}
		found := false
		for _, d := range s.Deviating {
			if d.Severity == analysis.SeverityCritical {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no critical finding", name)
		}
	}
	for _, name := range []string{"hfsplus_linux_trusty", "sshfs_tmpfs_allow_other", "ufs_freebsd_10", "btrfs", "hfsplus_osx_10.9.5"} {
		if s := bySummary[name]; s == nil || s.Rejected == 0 {
			t.Errorf("%s: defect not detected", name)
		}
	}
	merged := MergeSurvey(results)
	if len(merged.Distinguishing()) == 0 {
		t.Error("no distinguishing tests across configurations")
	}
}

func deviated(s *analysis.RunSummary, test string) *analysis.Deviation {
	for i := range s.Deviating {
		if s.Deviating[i].Test == test {
			return &s.Deviating[i]
		}
	}
	return nil
}

// TestFig8OpenZFSSpin — Fig 8: the disconnected-directory create spins on
// OpenZFS/OS X; the oracle flags the watchdog's EINTR as critical.
func TestFig8OpenZFSSpin(t *testing.T) {
	if testing.Short() {
		t.Skip("survey execution run")
	}
	s := runSurveyScripts(t, "openzfs_1.3.0_osx", SpecFor(OSX))
	d := deviated(s, "survey___fig8_disconnected_create")
	if d == nil {
		t.Fatal("Fig 8 spin not detected")
	}
	if d.Severity != analysis.SeverityCritical {
		t.Errorf("severity = %v", d.Severity)
	}
	if !strings.Contains(d.Errors[0].Observed, "EINTR") {
		t.Errorf("observed = %q", d.Errors[0].Observed)
	}
	// Conforming OS X HFS+ does not spin here.
	c := runSurveyScripts(t, "hfsplus_osx_10.9.5", SpecFor(OSX))
	if deviated(c, "survey___fig8_disconnected_create") != nil {
		t.Error("conforming HFS+ flagged on Fig 8")
	}
}

// TestSurveyPosixovlLeak — §7.3.5: the storage leak is detected both as a
// wrong link count and as creation failing on an "empty" volume.
func TestSurveyPosixovlLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("survey execution run")
	}
	s := runSurveyScripts(t, "posixovl_vfat_1.2", SpecFor(Linux))
	d := deviated(s, "survey___posixovl_rename_leak")
	if d == nil {
		t.Fatal("leak not detected")
	}
	if d.Severity != analysis.SeverityCritical {
		t.Errorf("severity = %v", d.Severity)
	}
	// Multiple steps deviate: the nlink observations and eventually the
	// ENOENT creations on the full volume.
	if len(d.Errors) < 10 {
		t.Errorf("only %d deviating steps", len(d.Errors))
	}
}

// TestSurveyPwriteUnderflow — §7.3.4: the OS X VFS negative-offset bug.
func TestSurveyPwriteUnderflow(t *testing.T) {
	if testing.Short() {
		t.Skip("survey execution run")
	}
	s := runSurveyScripts(t, "hfsplus_osx_10.9.5", SpecFor(OSX))
	d := deviated(s, "survey___pwrite_negative_offset")
	if d == nil {
		t.Fatal("underflow not detected")
	}
	if d.Errors[0].Observed != "EFBIG" {
		t.Errorf("observed = %q, want EFBIG (SIGXFSZ stand-in)", d.Errors[0].Observed)
	}
	if len(d.Errors[0].Allowed) != 1 || d.Errors[0].Allowed[0] != "EINVAL" {
		t.Errorf("allowed = %v, want [EINVAL]", d.Errors[0].Allowed)
	}
}

// TestSurveyInvariantViolation — §7.3.2: FreeBSD's symlink replacement
// breaks "errors don't change the state".
func TestSurveyInvariantViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("survey execution run")
	}
	s := runSurveyScripts(t, "ufs_freebsd_10", SpecFor(FreeBSD))
	d := deviated(s, "survey___freebsd_symlink_invariant")
	if d == nil {
		t.Fatal("invariant violation not detected")
	}
	// Two observable deviations: ENOTDIR instead of EEXIST, then the
	// lstat showing a file where the symlink was.
	if len(d.Errors) < 2 {
		t.Errorf("steps = %d, want the error AND the state damage", len(d.Errors))
	}
}

// TestSurveyPlatformConventions — §7.3.3: Linux O_APPEND/pwrite appends;
// POSIX-checking the same trace flags it, Linux-checking accepts it.
func TestSurveyPlatformConventions(t *testing.T) {
	var script *Script
	for _, s := range testSurveyScripts() {
		if s.Name == "survey___o_append_pwrite" {
			script = s
		}
	}
	tr, err := ExecuteOne(script, MemFS(LinuxProfile("ext4")))
	if err != nil {
		t.Fatal(err)
	}
	if r := CheckOne(SpecFor(Linux), tr); !r.Accepted {
		t.Errorf("Linux variant rejected the Linux convention:\n%s", RenderChecked(tr, r))
	}
	if r := CheckOne(SpecFor(POSIX), tr); r.Accepted {
		t.Error("POSIX variant accepted the Linux O_APPEND/pwrite convention")
	}
}

// TestSurveyErrorCodes — §7.3.2: unlink(dir) splits EISDIR (Linux/LSB)
// from EPERM (POSIX/OS X).
func TestSurveyErrorCodes(t *testing.T) {
	var script *Script
	for _, s := range testSurveyScripts() {
		if s.Name == "survey___unlink_directory" {
			script = s
		}
	}
	trLinux, _ := ExecuteOne(script, MemFS(LinuxProfile("ext4")))
	if r := CheckOne(SpecFor(Linux), trLinux); !r.Accepted {
		t.Error("Linux EISDIR rejected by the Linux variant")
	}
	if r := CheckOne(SpecFor(OSX), trLinux); r.Accepted {
		t.Error("Linux EISDIR accepted by the OS X variant")
	}
	trOSX, _ := ExecuteOne(script, MemFS(OSXProfile("hfs")))
	if r := CheckOne(SpecFor(OSX), trOSX); !r.Accepted {
		t.Error("OS X EPERM rejected by the OS X variant")
	}
}

// TestSurveySSHFS — §7.3.4: the three mount options compared; allow_other
// alone lets another user read a 0600 file.
func TestSurveySSHFS(t *testing.T) {
	if testing.Short() {
		t.Skip("survey execution run")
	}
	bypass := runSurveyScripts(t, "sshfs_tmpfs_allow_other", SpecFor(Linux))
	if deviated(bypass, "survey___sshfs_allow_other_bypass") == nil {
		t.Error("allow_other permission bypass not detected")
	}
	if deviated(bypass, "survey___sshfs_creation_ownership") == nil {
		t.Error("creation-ownership surprise not detected")
	}
	// default_permissions closes the read bypass.
	defperm := runSurveyScripts(t, "sshfs_tmpfs_default_permissions", SpecFor(Linux))
	if d := deviated(defperm, "survey___sshfs_allow_other_bypass"); d != nil {
		t.Error("default_permissions should enforce the 0600 mode")
	}
}

// TestFig4RenderChecked — the checked-trace output matches Fig 4's shape.
func TestFig4RenderChecked(t *testing.T) {
	text := `@type trace
# Test rename___rename_emptydir___nonemptydir
1: mkdir "emptydir" 0o777
1: RV_none
1: mkdir "nonemptydir" 0o777
1: RV_none
1: open "nonemptydir/f" [O_CREAT;O_WRONLY] 0o666
1: RV_file_descriptor(FD 3)
1: rename "emptydir" "nonemptydir"
1: EPERM
`
	tr, err := ParseTrace(text)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderChecked(tr, CheckOne(DefaultSpec(), tr))
	for _, want := range []string{
		"# Error:", "EPERM",
		"# allowed are only: EEXIST, ENOTEMPTY",
		"# continuing with EEXIST, ENOTEMPTY",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("checked trace missing %q:\n%s", want, out)
		}
	}
}

// TestConfigurationMatrix — the survey matrix has the paper's breadth.
func TestConfigurationMatrix(t *testing.T) {
	configs := Configurations()
	if len(configs) < 40 {
		t.Fatalf("%d configurations, want > 40", len(configs))
	}
	names := map[string]bool{}
	for _, c := range configs {
		if names[c.Name] {
			t.Errorf("duplicate configuration %q", c.Name)
		}
		names[c.Name] = true
	}
	for _, want := range []string{"ext4 vs linux", "hostfs vs linux", "specfs_posix vs posix", "btrfs vs posix"} {
		if !names[want] {
			t.Errorf("matrix missing %q", want)
		}
	}
}
