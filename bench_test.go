package sibylfs

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation, regenerating each measured quantity (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for paper-vs-measured numbers).
//
//	BenchmarkTable71CheckSuite    — §7.1 trace-checking throughput
//	BenchmarkTable71ExecuteSuite  — §7.1 test-suite execution time
//	BenchmarkTable71RenderHTML    — §7.1 HTML generation
//	BenchmarkTable3StateSetCheck  — §3 nondeterminism handling cost
//	BenchmarkAblationNoDedup      — ablation: fingerprint dedup off
//	BenchmarkAblationStateClone   — the state-clone primitive behind §3
//	BenchmarkFig7ModelSize        — Fig 7 model line counts
//	BenchmarkSpecFSExecute        — determinized-model execution (§8)

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/checker"
	"repro/internal/osspec"
	"repro/internal/types"
)

var benchOnce struct {
	sync.Once
	scripts []*Script
	traces  []*Trace
}

// benchData executes a fixed 2 000-script slice of the suite once and
// shares the traces across benchmarks.
func benchData(b *testing.B) ([]*Script, []*Trace) {
	b.Helper()
	benchOnce.Do(func() {
		suite := Generate()
		var sel []*Script
		for i := 0; i < len(suite) && len(sel) < 2000; i += len(suite)/2000 + 1 {
			sel = append(sel, suite[i])
		}
		traces, err := Execute(sel, MemFS(LinuxProfile("ext4")), 0)
		if err != nil {
			panic(err)
		}
		benchOnce.scripts = sel
		benchOnce.traces = traces
	})
	return benchOnce.scripts, benchOnce.traces
}

// BenchmarkTable71CheckSuite measures oracle throughput with 4 workers,
// the paper's configuration (21 070 traces in ≈79 s = 266 traces/s on a
// 2012 i7; report traces/s for comparison).
func BenchmarkTable71CheckSuite(b *testing.B) {
	_, traces := benchData(b)
	c := checker.New(DefaultSpec())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.CheckAll(traces, 4)
	}
	b.StopTimer()
	perSec := float64(len(traces)) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(perSec, "traces/s")
}

// BenchmarkTable71ExecuteSuite measures test execution on the in-memory
// target (the paper: 152 s on tmpfs for the full suite).
func BenchmarkTable71ExecuteSuite(b *testing.B) {
	scripts, _ := benchData(b)
	factory := MemFS(LinuxProfile("ext4"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(scripts, factory, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perSec := float64(len(scripts)) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(perSec, "scripts/s")
}

// BenchmarkTable71RenderHTML measures the result-rendering phase (the
// paper's naive single-threaded HTML generator takes 48 s for a run).
func BenchmarkTable71RenderHTML(b *testing.B) {
	_, traces := benchData(b)
	results := Check(DefaultSpec(), traces, 0)
	sum := analysis.Summarise("bench", traces, results)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.RenderIndexHTML(sum); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 50; j++ {
			if _, err := analysis.RenderTraceHTML(traces[j], results[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// nondetTrace builds a readdir/concurrency-heavy trace — the worst case
// for nondeterminism handling (§3).
func nondetTrace(b *testing.B) *Trace {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("@type script\n# Test bench___nondet\n")
	sb.WriteString("mkdir \"d\" 0o755\n")
	names := []string{"a", "b", "c", "e", "f", "g"}
	for i, n := range names {
		sb.WriteString("open \"d/" + n + "\" [O_CREAT;O_WRONLY] 0o644\n")
		sb.WriteString("close (FD " + itoa(3+i) + ")\n")
	}
	sb.WriteString("opendir \"d\"\n")
	for range names {
		sb.WriteString("readdir (DH 1)\n")
	}
	sb.WriteString("unlink \"d/a\"\nrewinddir (DH 1)\n")
	for range names {
		sb.WriteString("readdir (DH 1)\n")
	}
	sb.WriteString("closedir (DH 1)\n")
	s, err := ParseScript(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	tr, err := ExecuteOne(s, MemFS(LinuxProfile("ext4")))
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var out []byte
	for n > 0 {
		out = append([]byte{byte('0' + n%10)}, out...)
		n /= 10
	}
	return string(out)
}

// BenchmarkTable3StateSetCheck measures per-trace checking cost on the
// nondeterminism-heavy trace. The §3 claim: milliseconds per trace, not
// the CPU-hours of backtracking approaches (Netsem: ≈2.5 CPU-hours/trace).
func BenchmarkTable3StateSetCheck(b *testing.B) {
	tr := nondetTrace(b)
	c := checker.New(DefaultSpec())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Check(tr)
		if !r.Accepted {
			b.Fatal("bench trace rejected")
		}
	}
}

// BenchmarkCheckConcurrent measures oracle cost on genuinely interleaved
// multi-process traces — the τ-closure enumerating call-processing orders
// (§3's concurrency nondeterminism, the load behind §7.1's MaxStates).
// Complements BenchmarkTable3StateSetCheck, whose nondeterminism is
// readdir-driven and single-process.
func BenchmarkCheckConcurrent(b *testing.B) {
	scripts := GenerateConcurrent()
	traces, err := ExecuteConcurrent(scripts, MemFS(LinuxProfile("ext4")),
		ConcurrentOptions{Seeded: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	c := checker.New(DefaultSpec())
	peak := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, tr := range traces {
			r := c.Check(tr)
			if !r.Accepted {
				b.Fatalf("concurrent trace %d rejected", j)
			}
			if r.MaxStates > peak {
				peak = r.MaxStates
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(traces))*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
	b.ReportMetric(float64(peak), "peak_states")
}

// BenchmarkAblationNoDedup shows what fingerprint deduplication of the
// state set buys on the same trace (the design choice DESIGN.md calls
// out; without it, equivalent readdir branches multiply).
func BenchmarkAblationNoDedup(b *testing.B) {
	tr := nondetTrace(b)
	c := checker.New(DefaultSpec())
	c.DisableDedup = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Check(tr)
		if !r.Accepted {
			b.Fatal("bench trace rejected")
		}
	}
}

// BenchmarkAblationStateClone measures the clone primitive that the
// possible-next-state enumeration strategy (§3) rests on.
func BenchmarkAblationStateClone(b *testing.B) {
	s := osspec.NewOsState(DefaultSpec())
	// Populate a fixture-sized state.
	grow := func(cmd types.Command) {
		called := osspec.Trans(s, types.CallLabel{Pid: 1, Cmd: cmd})
		for _, cand := range osspec.TauFor(called[0], 1) {
			for _, rv := range osspec.ConcreteReturns(cand, 1) {
				if after := osspec.Trans(cand, types.ReturnLabel{Pid: 1, Ret: rv}); len(after) > 0 {
					s = after[0]
					return
				}
			}
		}
	}
	grow(types.Mkdir{Path: "/d", Perm: 0o755})
	for _, n := range []string{"a", "b", "c", "e"} {
		grow(types.Open{Path: "/d/" + n, Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Clone()
	}
}

// closureFixture builds a state set with several processes holding
// conflicting pending calls — the τ-closure's worst case: the closure must
// enumerate processing orders, and only fingerprint-equal interleavings
// merge. This is the micro-workload behind BenchmarkCheckConcurrent's
// per-return closures.
func closureFixture(b *testing.B) []*osspec.OsState {
	b.Helper()
	s := osspec.NewOsState(DefaultSpec())
	for p := 2; p <= 5; p++ {
		next := osspec.Trans(s, types.CreateLabel{Pid: types.Pid(p), Uid: 0, Gid: 0})
		if len(next) != 1 {
			b.Fatal("create rejected")
		}
		s = next[0]
	}
	calls := []types.Command{
		types.Mkdir{Path: "/a", Perm: 0o755},
		types.Open{Path: "/a/f", Flags: types.OCreat | types.OWronly, Perm: 0o644, HasPerm: true},
		types.Mkdir{Path: "/b", Perm: 0o755},
		types.Rename{Src: "/b", Dst: "/c"},
		types.Unlink{Path: "/a/f"},
	}
	for i, cmd := range calls {
		next := osspec.Trans(s, types.CallLabel{Pid: types.Pid(i + 1), Cmd: cmd})
		if len(next) != 1 {
			b.Fatal("call rejected")
		}
		s = next[0]
	}
	return []*osspec.OsState{s}
}

// BenchmarkTauClosure measures one full τ-closure over the fixture set:
// every order in which five conflicting pending calls may be processed,
// with state-identity deduplication and the checker's default worker
// fan-out — the hot loop of concurrent checking.
func BenchmarkTauClosure(b *testing.B) {
	states := closureFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, _ := osspec.TauClosureWith(states, osspec.ClosureOpts{Dedup: true})
		if len(out) < 8 {
			b.Fatalf("closure collapsed to %d states", len(out))
		}
	}
}

// BenchmarkTauClosureSerial is the same closure pinned to one worker,
// isolating the COW/hash gains from the goroutine fan-out.
func BenchmarkTauClosureSerial(b *testing.B) {
	states := closureFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, _ := osspec.TauClosureWith(states, osspec.ClosureOpts{Dedup: true, Workers: 1})
		if len(out) < 8 {
			b.Fatalf("closure collapsed to %d states", len(out))
		}
	}
}

// BenchmarkStateClone measures the transition-level clone primitive on a
// populated state (tree of directories, open descriptors, file contents) —
// the allocation every os_trans successor pays.
func BenchmarkStateClone(b *testing.B) {
	s := osspec.NewOsState(DefaultSpec())
	grow := func(cmd types.Command) {
		called := osspec.Trans(s, types.CallLabel{Pid: 1, Cmd: cmd})
		for _, cand := range osspec.TauFor(called[0], 1) {
			for _, rv := range osspec.ConcreteReturns(cand, 1) {
				if after := osspec.Trans(cand, types.ReturnLabel{Pid: 1, Ret: rv}); len(after) > 0 {
					s = after[0]
					return
				}
			}
		}
		b.Fatalf("fixture command %v not applied", cmd)
	}
	for _, d := range []string{"/d1", "/d2", "/d1/s1", "/d1/s2", "/d2/s3"} {
		grow(types.Mkdir{Path: d, Perm: 0o755})
	}
	for i, f := range []string{"/d1/a", "/d1/b", "/d1/s1/c", "/d2/s3/e", "/f", "/g"} {
		grow(types.Open{Path: f, Flags: types.OCreat | types.ORdwr, Perm: 0o644, HasPerm: true})
		grow(types.Write{FD: types.FD(3 + i), Data: []byte("some file content payload"), Size: 25})
	}
	grow(types.Opendir{Path: "/d1"})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Clone()
	}
}

// BenchmarkFig7ModelSize regenerates the Fig 7 table: non-comment lines of
// specification per module (the paper's Lem model totals 5 981 lines).
func BenchmarkFig7ModelSize(b *testing.B) {
	moduleOf := map[string]string{
		"internal/state":   "State",
		"internal/pathres": "Path resolution",
		"internal/fsspec":  "File system",
		"internal/osspec":  "POSIX API",
		"internal/types":   "Types",
		"internal/checker": "Checker",
		"internal/cov":     "Support",
		"internal/trace":   "Support",
	}
	var total float64
	counts := map[string]int{}
	err := filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return err
		}
		mod, ok := moduleOf[filepath.ToSlash(filepath.Dir(path))]
		if !ok {
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" && !strings.HasPrefix(line, "//") {
				counts[mod]++
				total++
			}
		}
		return sc.Err()
	})
	if err != nil {
		b.Fatal(err)
	}
	for mod, n := range counts {
		b.ReportMetric(float64(n), strings.ReplaceAll(mod, " ", "_")+"_loc")
	}
	b.ReportMetric(total, "total_loc")
	for i := 0; i < b.N; i++ {
		// The measurement is the table itself; nothing per-iteration.
	}
}

// BenchmarkPipelineCold and BenchmarkPipelineWarm measure the cache-backed
// pipeline over a fixed 500-script slice: cold executes and checks every
// script, warm resolves every job from the content-addressed cache. Their
// ratio is the re-run speedup recorded in BENCH_4.json (the acceptance
// floor is 5x on the full suite).
func BenchmarkPipelineCold(b *testing.B) {
	scripts, _ := benchData(b)
	sel := scripts[:500]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := RunPipeline(PipelineConfig{
			Name: "bench-cold", Scripts: sel,
			Factory: MemFS(LinuxProfile("ext4")), FSName: "ext4",
			Spec: DefaultSpec(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if st.Executed != len(sel) {
			b.Fatalf("expected all-cold run, got %s", st)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(sel))*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
}

func BenchmarkPipelineWarm(b *testing.B) {
	scripts, _ := benchData(b)
	sel := scripts[:500]
	cache, err := OpenResultCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	cfg := PipelineConfig{
		Name: "bench-warm", Scripts: sel,
		Factory: MemFS(LinuxProfile("ext4")), FSName: "ext4",
		Spec: DefaultSpec(), Cache: cache,
	}
	if _, _, err := RunPipeline(cfg); err != nil { // fill the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := RunPipeline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if st.CacheHits != len(sel) {
			b.Fatalf("expected all-warm run, got %s", st)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(sel))*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
}

// BenchmarkSpecFSExecute measures the determinized model run as an
// implementation (the paper mounted SibylFS as a FUSE file system, §8).
func BenchmarkSpecFSExecute(b *testing.B) {
	scripts, _ := benchData(b)
	sel := scripts[:200]
	factory := SpecFS("specfs", DefaultSpec())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(sel, factory, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perSec := float64(len(sel)) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(perSec, "scripts/s")
}

// BenchmarkCheckSingleWorkerVsFour quantifies the parallel speedup that
// trace independence provides (§7.1 runs with 4 processes).
func BenchmarkCheckSingleWorker(b *testing.B) {
	_, traces := benchData(b)
	sel := traces[:500]
	c := checker.New(DefaultSpec())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.CheckAll(sel, 1)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(sel))*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
}
