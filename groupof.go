package sibylfs

import "repro/internal/testgen"

// GroupOfName extracts the command group from a script name.
func GroupOfName(name string) string { return testgen.GroupOf(name) }
