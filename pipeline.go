package sibylfs

import (
	"context"

	"repro/internal/pipeline"
)

// Batch pipeline vocabulary, re-exported (see internal/pipeline and
// ARCHITECTURE.md). The pipeline is the cross-trace scaling layer: it
// shards a suite over a worker pool, skips unchanged work through a
// content-addressed result cache, and journals records to a crash-safe
// JSONL sink that doubles as the resume log.
type (
	// PipelineConfig parameterises one sharded, cache-backed run.
	PipelineConfig = pipeline.Config
	// PipelineRecord is one checked trace as the pipeline persists it.
	PipelineRecord = pipeline.Record
	// PipelineStats is a run's executed/cached/resumed work split.
	PipelineStats = pipeline.Stats
	// ResultCache is the content-addressed (script, spec, config)-keyed store.
	ResultCache = pipeline.Cache
	// ResultSink is the streaming JSONL journal with crash-safe resume.
	ResultSink = pipeline.Sink
	// ResultStore is the pluggable persistence backend under ResultCache
	// (see WithStore): PackStore — packed append-only segments with
	// group-commit durability, the default — or DirStore, the v1
	// file-per-key layout kept for compatibility.
	ResultStore = pipeline.Store
	// StoreStats summarises a store's contents (Session.CacheStats,
	// sfs-run -cache-stats).
	StoreStats = pipeline.StoreStats
)

// OpenResultCache opens (creating if needed) a result cache rooted at dir
// with the default packed-segment backend; a dir holding the v1
// file-per-key layout keeps serving those entries read-through.
func OpenResultCache(dir string) (*ResultCache, error) { return pipeline.OpenCache(dir) }

// OpenPackStore opens (creating if needed) a packed segment store rooted
// at dir — the default ResultStore backend, exposed for WithStore.
func OpenPackStore(dir string) (ResultStore, error) { return pipeline.OpenPackStore(dir) }

// OpenDirStore opens (creating if needed) a v1 file-per-key store rooted
// at dir — the compatibility ResultStore backend (sfs-run -store dir).
func OpenDirStore(dir string) (ResultStore, error) { return pipeline.OpenDirStore(dir) }

// OpenResultSink opens the JSONL sink at path; resume recovers an
// interrupted run's journal instead of replacing it.
func OpenResultSink(path string, resume bool) (*ResultSink, error) {
	return pipeline.OpenSink(path, resume)
}

// RunPipeline executes one shard of a suite through the cache-backed
// checking pipeline, returning this shard's records in job order.
//
// Deprecated: use Session.Run — it is cancellable, owns the sink
// lifecycle (finalize on success, resumable journal on error) and
// supplies spec/workers/cache/observer from the session options.
func RunPipeline(cfg PipelineConfig) ([]PipelineRecord, PipelineStats, error) {
	return pipeline.Run(context.Background(), cfg)
}
