package sibylfs

import (
	"context"
	"path/filepath"

	"repro/internal/pipeline"
	"repro/internal/serveapi"
)

// Check-as-a-service vocabulary, re-exported (see internal/serve,
// internal/serveapi and ARCHITECTURE.md § Check as a service). The
// sfs-serve daemon runs suites submitted over HTTP and exports its
// result store so a fleet of clients shares one warm cache; this file
// is the client side — submitting jobs, streaming records, and opening
// the remote store as a Session cache backend.
type (
	// ServeClient talks to an sfs-serve daemon: SubmitJob, Job, Jobs,
	// Records (NDJSON streaming), Result, Wait, Cancel.
	ServeClient = serveapi.Client
	// ServeJobSpec describes one suite submission: universe name or
	// inline scripts, implementation under test, run config.
	ServeJobSpec = serveapi.JobSpec
	// ServeJobStatus is one job's externally visible state.
	ServeJobStatus = serveapi.JobStatus
)

// NewServeClient returns a client for the sfs-serve daemon rooted at
// base ("http://host:port").
func NewServeClient(base string) *ServeClient { return serveapi.NewClient(base) }

// SubmitJob submits one suite spec to the sfs-serve daemon at base and
// returns the accepted job's status (carrying its ID) — shorthand for
// NewServeClient(base).SubmitJob. Stream its records with
// ServeClient.Records, or poll ServeClient.Wait and fetch the finalized
// JSONL with ServeClient.Result.
func SubmitJob(ctx context.Context, base string, spec ServeJobSpec) (ServeJobStatus, error) {
	return NewServeClient(base).SubmitJob(ctx, spec)
}

// OpenHTTPStore opens a remote ResultStore speaking the sfs-serve
// /v1/store protocol at base. With a non-empty localDir, a local packed
// store under localDir/pack becomes the fallback: reads fall through to
// it when the server cannot answer, and write batches that exhaust
// their retries land in it instead of being dropped — a fleet client
// keeps working through a daemon outage, just colder. Values are
// CRC-verified end to end; torn or corrupt responses are cache misses,
// never errors. Pass the store to WithStore (the caller owns Close).
func OpenHTTPStore(base, localDir string) (ResultStore, error) {
	var opts pipeline.HTTPStoreOptions
	if localDir != "" {
		fallback, err := pipeline.OpenPackStore(filepath.Join(localDir, "pack"))
		if err != nil {
			return nil, err
		}
		opts.Fallback = fallback
	}
	return pipeline.OpenHTTPStore(base, opts)
}

// WithRemoteCache backs the session's result cache with an sfs-serve
// daemon's shared store at base (see OpenHTTPStore). Combined with
// WithCacheDir, the local directory becomes the unreachable-server
// fallback instead of a standalone cache. Takes precedence over a bare
// WithCacheDir; WithStore still wins over both.
func WithRemoteCache(base string) Option { return func(s *Session) { s.remote = base } }
